package experiments

import (
	"fmt"
	"io"

	"odin/internal/core"
	"odin/internal/dnn"
	"odin/internal/sparsity"
)

// RowSkipRow is one (width) comparison between the analytic skip model and
// a measured bitmap.
type RowSkipRow struct {
	Width    int
	Analytic float64
	Measured float64
}

// RowSkipResult validates the analytic row-segment-skip statistics
// (internal/sparsity.Profile) against exact measurements on synthesized
// weight bitmaps for a representative layer.
type RowSkipResult struct {
	Model string
	Layer string
	Rows  []RowSkipRow
}

// RowSkip runs the validation on a mid-network VGG11 layer.
func RowSkip(sys core.System, widths []int) (RowSkipResult, error) {
	if len(widths) == 0 {
		widths = []int{4, 8, 16, 32, 64, 128}
	}
	model := dnn.NewVGG11()
	if _, err := sys.Prepare(model); err != nil {
		return RowSkipResult{}, err
	}
	layer := model.Layers[5]
	profile := sparsity.ProfileFor(layer, sys.Sparsity)
	bitmap := sparsity.Synthesize(512, 512, profile, "rowskip/"+layer.Name)

	res := RowSkipResult{Model: model.Name, Layer: layer.Name}
	for _, w := range widths {
		res.Rows = append(res.Rows, RowSkipRow{
			Width:    w,
			Analytic: profile.SegmentZeroFraction(w),
			Measured: bitmap.SegmentZeroFraction(w),
		})
	}
	return res, nil
}

// Render prints the validation table.
func (r RowSkipResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Row-skip model validation (%s %s): analytic vs measured segment-zero fraction\n",
		r.Model, r.Layer)
	fmt.Fprintf(w, "%-8s %12s %12s\n", "width", "analytic", "measured")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8d %11.1f%% %11.1f%%\n", row.Width, row.Analytic*100, row.Measured*100)
	}
}

func runRowSkip(w io.Writer) error {
	res, err := RowSkip(core.DefaultSystem(), nil)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}

// IndexesRow is one OU width's index-storage footprint for a whole model.
type IndexesRow struct {
	Width     int
	StorageKB float64 // row-index tables across all layers at this OU width
}

// IndexesResult quantifies the paper's §II motivation: offline OU
// compression schemes must store row-index tables sized to the chosen OU
// width; supporting every candidate width (as a static design that wants
// Odin's flexibility would have to) multiplies that storage, while Odin
// derives decisions online from a 4-feature policy instead.
type IndexesResult struct {
	Model       string
	Rows        []IndexesRow
	AllWidthsKB float64 // storing tables for every candidate width
	OdinKB      float64 // Odin's alternative: policy + buffer storage
}

// Indexes runs the storage accounting on VGG11.
func Indexes(sys core.System, widths []int) (IndexesResult, error) {
	if len(widths) == 0 {
		widths = []int{4, 8, 16, 32, 64, 128}
	}
	model := dnn.NewVGG11()
	wl, err := sys.Prepare(model)
	if err != nil {
		return IndexesResult{}, err
	}
	res := IndexesResult{Model: model.Name}
	for _, width := range widths {
		var kb float64
		for j := range model.Layers {
			m := wl.Mappings[j]
			profile := sparsity.ProfileFor(model.Layers[j], sys.Sparsity)
			bm := sparsity.Synthesize(m.RowsUsed, m.ColsUsed, profile,
				fmt.Sprintf("indexes/%s/%d", model.Layers[j].Name, width))
			kb += bm.CompressRowIndices(width).KB() * float64(m.Xbars)
		}
		res.Rows = append(res.Rows, IndexesRow{Width: width, StorageKB: kb})
		res.AllWidthsKB += kb
	}
	// Odin's storage: the policy parameters (float32) plus the training
	// buffer (§V.E: 0.35 KB).
	opts := core.DefaultControllerOptions()
	pol, _, err := core.BootstrapPolicy(sys, nil, core.DefaultBootstrapConfig())
	if err != nil {
		return res, err
	}
	o := sys.Arch.OverheadModel(pol.NumParams(), opts.BufferSize, opts.UpdateEpochs)
	res.OdinKB = float64(pol.NumParams()*4)/1024 + o.TrainingBufferKB
	return res, nil
}

// Render prints the storage comparison.
func (r IndexesResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Index-storage accounting (%s): row-index tables for offline OU compression\n", r.Model)
	fmt.Fprintf(w, "%-8s %14s\n", "OU width", "storage (KB)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8d %14.1f\n", row.Width, row.StorageKB)
	}
	fmt.Fprintf(w, "supporting every candidate width statically: %.1f KB\n", r.AllWidthsKB)
	fmt.Fprintf(w, "Odin's online alternative (policy + buffer):  %.2f KB (%.0f× smaller)\n",
		r.OdinKB, r.AllWidthsKB/r.OdinKB)
}

func runIndexes(w io.Writer) error {
	res, err := Indexes(core.DefaultSystem(), nil)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}
