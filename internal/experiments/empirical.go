package experiments

import (
	"fmt"
	"io"
	"math"

	"odin/internal/core"
	"odin/internal/infer"
	"odin/internal/ou"
)

// EmpiricalCell is one (OU size, device age) measurement.
type EmpiricalCell struct {
	OU         ou.Size
	Age        float64
	FlipRate   float64 // fraction of argmax flips vs the ideal execution
	LogitError float64 // mean relative L2 deviation of the logits
	// SurrogateLoss is the analytic accuracy-loss estimate for a network
	// running homogeneously at this OU size and age — the quantity the
	// flip rate validates.
	SurrogateLoss float64
}

// EmpiricalResult is the device-level validation of the accuracy
// surrogate: a small CNN is executed on actual crossbar models and its
// class-flip rate measured across OU sizes and ages.
//
// Findings: the time axis validates cleanly — flip rate and logit
// distortion are monotone in device age, near zero on a fresh device and
// substantial once drift variation accumulates, matching the surrogate.
// The OU axis does NOT resolve at this modelling level: with Table II's
// 1 Ω wire the first-order per-cell IR term is sub-percent for every OU
// size (Eq. (4) itself gives only ≈1 % at 16×16), so the surrogate's OU
// dependence — calibrated from the paper's figures — stands in for
// higher-order effects (sneak currents, driver saturation, ADC clipping)
// that a first-order crossbar model cannot produce.
type EmpiricalResult struct {
	Sizes  []ou.Size
	Ages   []float64
	Cells  []EmpiricalCell
	Inputs int
}

// Empirical runs the flip-rate grid. The engine uses 6-bit cells so that
// quantisation does not mask the drift/IR-drop trends under test.
func Empirical(sys core.System, sizes []ou.Size, ages []float64) (EmpiricalResult, error) {
	if len(sizes) == 0 {
		sizes = []ou.Size{{R: 4, C: 4}, {R: 16, C: 16}, {R: 64, C: 64}}
	}
	if len(ages) == 0 {
		ages = []float64{1, 1e4, 1e7, 1e9}
	}
	const nInputs = 60

	device := sys.Device
	device.BitsPerCell = 6
	net := infer.RandomNet(1, 16, 16, 4, "empirical-net")
	engine, err := infer.NewEngine(net, device, 64)
	if err != nil {
		return EmpiricalResult{}, err
	}
	// Evaluate on boundary-heavy inputs: random tensors mostly land far
	// from decision boundaries, so the flip rate would under-resolve; the
	// hardest slice of a larger candidate pool is the realistic regime.
	candidates := infer.RandomInputs(6*nInputs, 1, 16, 16, "empirical-inputs")
	inputs := engine.HardestInputs(candidates, nInputs)

	res := EmpiricalResult{Sizes: sizes, Ages: ages, Inputs: nInputs}
	const surrogateLayers = 3 // the CNN's weight layers
	for _, s := range sizes {
		for _, age := range ages {
			opts := infer.Options{OU: s, SimTime: age}
			homogeneous := make([]ou.Size, surrogateLayers)
			for i := range homogeneous {
				homogeneous[i] = s
			}
			res.Cells = append(res.Cells, EmpiricalCell{
				OU:            s,
				Age:           age,
				FlipRate:      engine.FlipRate(inputs, opts),
				LogitError:    engine.MeanLogitError(inputs, opts),
				SurrogateLoss: sys.Acc.Loss(homogeneous, age),
			})
		}
	}
	return res, nil
}

// Cell returns the measurement for (size, age).
func (r EmpiricalResult) Cell(s ou.Size, age float64) (EmpiricalCell, bool) {
	for _, c := range r.Cells {
		// Ages are discrete sweep points copied verbatim into the cells,
		// so the lookup wants exact bit identity, not a tolerance.
		if c.OU == s && math.Float64bits(c.Age) == math.Float64bits(age) {
			return c, true
		}
	}
	return EmpiricalCell{}, false
}

// Render prints the flip-rate grid with the surrogate estimates alongside.
func (r EmpiricalResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Empirical surrogate validation: crossbar-executed CNN (%d inputs)\n", r.Inputs)
	fmt.Fprintf(w, "cells: logit-err%% / flip%% (surrogate loss %%)\n")
	fmt.Fprintf(w, "%-10s", "OU \\ age")
	for _, age := range r.Ages {
		fmt.Fprintf(w, "%18.0e", age)
	}
	fmt.Fprintln(w)
	for _, s := range r.Sizes {
		fmt.Fprintf(w, "%-10s", s.String())
		for _, age := range r.Ages {
			c, ok := r.Cell(s, age)
			if !ok {
				fmt.Fprintf(w, "%18s", "-")
				continue
			}
			fmt.Fprintf(w, "%6.1f/%4.1f%% (%4.1f%%)", c.LogitError*100, c.FlipRate*100, c.SurrogateLoss*100)
		}
		fmt.Fprintln(w)
	}
}

func runEmpirical(w io.Writer) error {
	res, err := Empirical(core.DefaultSystem(), nil, nil)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}
