package experiments

import (
	"bytes"
	"strings"
	"testing"

	"odin/internal/core"
)

func TestProactiveTriggerBehaviour(t *testing.T) {
	t.Parallel()
	res, err := Proactive(core.DefaultSystem(), []float64{1.2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("expected paper + 2 variants, got %d", len(res.Rows))
	}
	paper, aggressive, loose := res.Rows[0], res.Rows[1], res.Rows[2]
	// An aggressive latency trigger fires and reprograms far more often.
	if aggressive.Reprograms <= paper.Reprograms {
		t.Errorf("aggressive trigger did not fire: %d vs %d reprograms",
			aggressive.Reprograms, paper.Reprograms)
	}
	// A loose trigger behaves like the paper's controller.
	if loose.Reprograms != paper.Reprograms {
		t.Errorf("loose trigger changed behaviour: %d vs %d", loose.Reprograms, paper.Reprograms)
	}
	// The negative result this extension documents: thrashing writes make
	// the aggressive variant strictly worse on EDP.
	if aggressive.EDP <= paper.EDP {
		t.Errorf("aggressive variant unexpectedly improved EDP: %v vs %v",
			aggressive.EDP, paper.EDP)
	}
	// Accuracy is safe under every variant (η still governs selection).
	for _, row := range res.Rows {
		if row.MinAcc < 0.9 {
			t.Errorf("%s accuracy dropped to %v", row.Name, row.MinAcc)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "best variant") {
		t.Fatal("render missing summary line")
	}
}

func TestConfidenceRoutingMonotone(t *testing.T) {
	t.Parallel()
	res, err := Confidence(core.DefaultSystem(), []float64{0.3, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("expected RB + 2 hybrids + EX, got %d", len(res.Rows))
	}
	rb, loose, tight, ex := res.Rows[0], res.Rows[1], res.Rows[2], res.Rows[3]
	// Comparator work is monotone in the routing threshold.
	if !(rb.EvalsPerLayer <= loose.EvalsPerLayer &&
		loose.EvalsPerLayer <= tight.EvalsPerLayer &&
		tight.EvalsPerLayer <= ex.EvalsPerLayer) {
		t.Errorf("evals not monotone: %v %v %v %v",
			rb.EvalsPerLayer, loose.EvalsPerLayer, tight.EvalsPerLayer, ex.EvalsPerLayer)
	}
	// The finding this extension documents: RB is already near-optimal, so
	// extra comparator work buys essentially nothing (< 3% EDP spread).
	for _, row := range res.Rows[1:] {
		if row.EDP > rb.EDP*1.05 || row.EDP < rb.EDP*0.95 {
			t.Errorf("%s EDP %v strays >5%% from RB's %v", row.Name, row.EDP, rb.EDP)
		}
	}
}
