package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"odin/internal/core"
)

func TestAllUniqueIDsAndRunnable(t *testing.T) {
	t.Parallel()
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
	if len(seen) != 27 {
		t.Fatalf("expected 27 experiments, got %d", len(seen))
	}
}

func TestByID(t *testing.T) {
	t.Parallel()
	e, err := ByID("fig3")
	if err != nil || e.ID != "fig3" {
		t.Fatalf("ByID(fig3) = %+v, %v", e, err)
	}
	if _, err := ByID("fig99"); err == nil || !strings.Contains(err.Error(), "unknown id") {
		t.Fatalf("ByID(fig99) err = %v", err)
	}
}

func TestFamilyOf(t *testing.T) {
	t.Parallel()
	cases := map[string]string{
		"VGG11":       "VGG",
		"VGG19":       "VGG",
		"ResNet50":    "ResNet",
		"DenseNet121": "DenseNet",
		"ViT":         "ViT",
		"GoogLeNet":   "GoogLeNet",
		"Mystery":     "Mystery",
	}
	for name, want := range cases {
		if got := familyOf(name); got != want {
			t.Errorf("familyOf(%s) = %s, want %s", name, got, want)
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	t.Parallel()
	res := Table1(core.DefaultSystem())
	if len(res.Rows) != 9 {
		t.Fatalf("Table I has %d rows, want 9", len(res.Rows))
	}
	if res.TileAreaMM2 < 0.27 || res.TileAreaMM2 > 0.29 {
		t.Fatalf("tile area %v, paper reports 0.28 mm²", res.TileAreaMM2)
	}
	if res.ClockGHz != 1.2 {
		t.Fatalf("clock %v GHz, want 1.2", res.ClockGHz)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	for _, want := range []string{"eDRAM buffer", "Memristor array", "reconfigurable precision 3 to 6 bits"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table I output missing %q", want)
		}
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	t.Parallel()
	res := Table2(core.DefaultSystem())
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	for _, want := range []string{"1 ohm", "333/0.33 uS", "0.2 s^-1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II output missing %q:\n%s", want, out)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	t.Parallel()
	res, err := Fig3(core.DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 21 {
		t.Fatalf("ResNet18 has %d rows, want 21 layers", len(res.Rows))
	}
	grid := core.DefaultSystem().Grid()
	for _, row := range res.Rows {
		if _, _, ok := grid.IndexOf(row.Size); !ok {
			t.Errorf("layer %d size %v off grid", row.Layer, row.Size)
		}
		if row.Size.Product() >= 128*128 {
			t.Errorf("layer %d uses the full crossbar %v — should violate η", row.Layer, row.Size)
		}
		if row.WeightSparsity <= 0 || row.WeightSparsity >= 100 {
			t.Errorf("layer %d sparsity %v%% out of range", row.Layer, row.WeightSparsity)
		}
	}
	// Paper: the stem is pruned gently and gets a finer OU than the bulk.
	if res.Rows[0].WeightSparsity >= res.Rows[4].WeightSparsity {
		t.Error("stem should be less sparse than mid-network layers")
	}
}

func TestFig4DistributionShiftsLeft(t *testing.T) {
	t.Parallel()
	res, err := Fig4(core.DefaultSystem(), []float64{1, 1e4, 5e7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Counts) != 3 {
		t.Fatalf("expected 3 ages, got %d", len(res.Counts))
	}
	// The distribution's centre of mass must move toward fine OUs.
	if !(res.MeanProduct[0] > res.MeanProduct[1] && res.MeanProduct[1] > res.MeanProduct[2]) {
		t.Fatalf("mean OU product not decreasing: %v", res.MeanProduct)
	}
	// Layer counts are conserved at every age.
	for i, counts := range res.Counts {
		total := 0
		for _, n := range counts {
			total += n
		}
		if total != 21 {
			t.Errorf("age %d: %d layers accounted, want 21", i, total)
		}
	}
}

func TestFig5AgreementAndOverhead(t *testing.T) {
	t.Parallel()
	res, err := Fig5(core.DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshots) != 3 {
		t.Fatalf("expected 3 snapshots, got %d", len(res.Snapshots))
	}
	for _, s := range res.Snapshots {
		// EX online tracks the offline optimum exactly (same search).
		if s.EXAgreement < 0.99 {
			t.Errorf("t=%v: EX agreement %v, want ≈ 1", s.Age, s.EXAgreement)
		}
		// RB is close but cheaper.
		if s.RBAgreement < 0.3 {
			t.Errorf("t=%v: RB agreement %v implausibly low", s.Age, s.RBAgreement)
		}
	}
	// §V.B: EX ≈ 3× RB comparator work.
	if res.OverheadRatio < 1.5 || res.OverheadRatio > 5 {
		t.Fatalf("EX/RB overhead ratio %v outside the paper's ballpark (~3×)", res.OverheadRatio)
	}
}

func TestFig6Orderings(t *testing.T) {
	t.Parallel()
	res, err := Fig6(core.DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("expected 4 baselines + Odin, got %d rows", len(res.Rows))
	}
	byName := map[string]Fig6Row{}
	for _, r := range res.Rows {
		byName[r.Name] = r
	}
	odin := res.OdinRow()
	if odin.Name != "Odin" {
		t.Fatalf("last row is %s, want Odin", odin.Name)
	}
	// §V.C: reprogram counts order coarse ≫ fine ≫ Odin.
	if !(byName["16×16"].Reprograms > byName["16×4"].Reprograms &&
		byName["16×4"].Reprograms > byName["9×8"].Reprograms &&
		byName["9×8"].Reprograms > byName["8×4"].Reprograms &&
		byName["8×4"].Reprograms >= odin.Reprograms) {
		t.Errorf("reprogram ordering broken: %+v", byName)
	}
	// Odin beats every baseline on total energy (Fig. 6a).
	for name, row := range byName {
		if name == "Odin" {
			continue
		}
		if odin.TotalEnergy >= row.TotalEnergy {
			t.Errorf("Odin total energy %v not below %s's %v", odin.TotalEnergy, name, row.TotalEnergy)
		}
	}
	// 16×16's reprogramming burden dominates its totals.
	if byName["16×16"].TotalEnergy < 2*byName["16×16"].InferenceEnergy {
		t.Error("16×16 total energy should be dominated by reprogramming")
	}
}

func TestFig7AccuracyStory(t *testing.T) {
	t.Parallel()
	res, err := Fig7(core.DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]Fig7Series{}
	for _, s := range res.Series {
		series[s.Name] = s
	}
	noRep := series["16×16 w/o reprog"]
	withRep := series["16×16 w/ reprog"]
	odin := series["Odin"]
	// Paper headline: ≈22-point drop without reprogramming.
	if drop := res.IdealAcc - noRep.MinAcc; drop < 0.15 || drop > 0.35 {
		t.Errorf("16×16 w/o reprogramming drop = %v, want ≈ 0.22", drop)
	}
	// Reprogramming holds accuracy.
	if res.IdealAcc-withRep.MinAcc > 0.02 {
		t.Errorf("16×16 with reprogramming dropped %v", res.IdealAcc-withRep.MinAcc)
	}
	// Odin holds accuracy with at most a handful of reprograms.
	if res.IdealAcc-odin.MinAcc > 0.01 {
		t.Errorf("Odin dropped %v accuracy", res.IdealAcc-odin.MinAcc)
	}
	if odin.Reprogs > 4 {
		t.Errorf("Odin reprogrammed %d times, want ≈ 1", odin.Reprogs)
	}
	// 8×4 without reprogramming degrades less than 16×16 without.
	if series["8×4 w/o reprog"].MinAcc <= noRep.MinAcc {
		t.Error("finer OUs should degrade less without reprogramming")
	}
}

func TestOverheadMatchesSectionVE(t *testing.T) {
	t.Parallel()
	res, err := Overhead(core.DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	if res.OUControllerAreaMM2 != 0.005 {
		t.Errorf("controller area %v, paper: 0.005 mm²", res.OUControllerAreaMM2)
	}
	if res.OUControllerSharePc < 1.5 || res.OUControllerSharePc > 2.1 {
		t.Errorf("controller share %v%%, paper: 1.8%%", res.OUControllerSharePc)
	}
	if res.LearningAreaSharePc < 0.1 || res.LearningAreaSharePc > 0.3 {
		t.Errorf("learning share %v%%, paper: 0.2%%", res.LearningAreaSharePc)
	}
	if res.PredictLatencyPc != 0.9 {
		t.Errorf("latency penalty %v%%, paper: 0.9%%", res.PredictLatencyPc)
	}
	if res.BufferKB < 0.3 || res.BufferKB > 0.4 {
		t.Errorf("buffer %v KB, paper: 0.35 KB", res.BufferKB)
	}
	if res.EXOverRBRatio < 1.5 {
		t.Errorf("EX/RB ratio %v, paper: ≈3×", res.EXOverRBRatio)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "overhead analysis") {
		t.Error("render output malformed")
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	t.Parallel()
	// Smoke-render the cheap experiments end to end via their Run hooks.
	for _, id := range []string{"tab1", "tab2", "fig3", "fig4", "overhead"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e.Run(&buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", id)
		}
	}
}

func TestDataFuncsPresent(t *testing.T) {
	t.Parallel()
	for _, e := range All() {
		if e.Data == nil {
			t.Errorf("%s has no Data func", e.ID)
		}
	}
	// The cheap ones must produce marshal-able results.
	for _, id := range []string{"tab1", "tab2", "fig3", "fig4"} {
		e, _ := ByID(id)
		data, err := e.Data()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if _, err := json.Marshal(data); err != nil {
			t.Fatalf("%s not JSON-marshalable: %v", id, err)
		}
	}
}
