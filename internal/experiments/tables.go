package experiments

import (
	"fmt"
	"io"

	"odin/internal/core"
)

// Table1Row is one component row of the tile specification.
type Table1Row struct {
	Component string
	Spec      string
	AreaMM2   float64
}

// Table1Result reproduces Table I.
type Table1Result struct {
	Rows        []Table1Row
	TileAreaMM2 float64
	ClockGHz    float64
	TechNode    string
}

// Table1 builds the tile specification from the architecture model.
func Table1(sys core.System) Table1Result {
	res := Table1Result{
		TileAreaMM2: sys.Arch.TileArea(),
		ClockGHz:    sys.Arch.ClockHz / 1e9,
		TechNode:    "32nm",
	}
	for _, c := range sys.Arch.TileComponents() {
		res.Rows = append(res.Rows, Table1Row{Component: c.Name, Spec: c.Spec, AreaMM2: c.Area})
	}
	return res
}

// Render prints the table in the paper's layout.
func (r Table1Result) Render(w io.Writer) {
	fmt.Fprintf(w, "TABLE I. PIM ARCHITECTURE SPECIFICATIONS\n")
	fmt.Fprintf(w, "Tile Configuration (%.1f GHz, %s, %.2f mm²)\n", r.ClockGHz, r.TechNode, r.TileAreaMM2)
	fmt.Fprintf(w, "%-26s %-58s %s\n", "Component", "Specification", "Area (mm²)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-26s %-58s %.4f\n", row.Component, row.Spec, row.AreaMM2)
	}
}

func runTable1(w io.Writer) error {
	Table1(core.DefaultSystem()).Render(w)
	return nil
}

// Table2Row is one device parameter.
type Table2Row struct {
	Parameter   string
	Description string
	Value       string
}

// Table2Result reproduces Table II.
type Table2Result struct{ Rows []Table2Row }

// Table2 builds the ReRAM parameter table from the device model.
func Table2(sys core.System) Table2Result {
	d := sys.Device
	return Table2Result{Rows: []Table2Row{
		{"R_wire", "Crossbar wire resistance", fmt.Sprintf("%.0f ohm", d.RWire)},
		{"G_ON/G_OFF", "ON/OFF state conductance", fmt.Sprintf("%.0f/%.2f uS", d.GOn*1e6, d.GOff*1e6)},
		{"v", "Drift coefficient", fmt.Sprintf("%.1f s^-1", d.Nu)},
	}}
}

// Render prints the table in the paper's layout.
func (r Table2Result) Render(w io.Writer) {
	fmt.Fprintf(w, "TABLE II. PARAMETERS OF RERAM CROSSBAR SYSTEM\n")
	fmt.Fprintf(w, "%-12s %-28s %s\n", "Parameter", "Description", "Value")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %-28s %s\n", row.Parameter, row.Description, row.Value)
	}
}

func runTable2(w io.Writer) error {
	Table2(core.DefaultSystem()).Render(w)
	return nil
}
