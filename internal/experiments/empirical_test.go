package experiments

import (
	"bytes"
	"strings"
	"testing"

	"odin/internal/core"
	"odin/internal/ou"
)

func TestEmpiricalValidatesSurrogateTimeAxis(t *testing.T) {
	t.Parallel()
	sizes := []ou.Size{{R: 16, C: 16}}
	ages := []float64{1, 1e4, 1e9}
	res, err := Empirical(core.DefaultSystem(), sizes, ages)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("expected 3 cells, got %d", len(res.Cells))
	}
	get := func(age float64) EmpiricalCell {
		c, ok := res.Cell(sizes[0], age)
		if !ok {
			t.Fatalf("missing cell for age %v", age)
		}
		return c
	}
	fresh, aged, ancient := get(1), get(1e4), get(1e9)
	// Both empirical measures are monotone in age, like the surrogate.
	if !(fresh.LogitError < aged.LogitError && aged.LogitError < ancient.LogitError) {
		t.Errorf("logit error not monotone: %v, %v, %v",
			fresh.LogitError, aged.LogitError, ancient.LogitError)
	}
	if !(fresh.FlipRate <= aged.FlipRate && aged.FlipRate <= ancient.FlipRate) {
		t.Errorf("flip rate not monotone: %v, %v, %v",
			fresh.FlipRate, aged.FlipRate, ancient.FlipRate)
	}
	// A fresh device barely flips boundary inputs; an ancient one flips many.
	if fresh.FlipRate > 0.15 {
		t.Errorf("fresh flip rate %v too high", fresh.FlipRate)
	}
	if ancient.FlipRate < 0.2 {
		t.Errorf("ancient flip rate %v too low to validate the drift axis", ancient.FlipRate)
	}
	// Surrogate estimates accompany every cell.
	for _, c := range res.Cells {
		if c.SurrogateLoss < 0 || c.SurrogateLoss > 1 {
			t.Errorf("surrogate loss %v out of range", c.SurrogateLoss)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "flip") {
		t.Fatal("render malformed")
	}
}

func TestNoiseSweepMonotone(t *testing.T) {
	t.Parallel()
	res, err := Noise(core.DefaultSystem(), []float64{0, 0.05, 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	clean, mid, loud := res.Rows[0], res.Rows[1], res.Rows[2]
	if clean.LogitError > 0.05 {
		t.Errorf("zero-noise logit error %v should be near zero (quantisation only)", clean.LogitError)
	}
	if !(clean.LogitError < mid.LogitError && mid.LogitError < loud.LogitError) {
		t.Errorf("logit error not monotone in σ: %v %v %v",
			clean.LogitError, mid.LogitError, loud.LogitError)
	}
	if clean.FlipRate > loud.FlipRate {
		t.Errorf("flip rate fell with noise: %v -> %v", clean.FlipRate, loud.FlipRate)
	}
}
