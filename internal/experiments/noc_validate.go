package experiments

import (
	"fmt"
	"io"

	"odin/internal/core"
	"odin/internal/dnn"
)

// NoCValidateRow compares the analytic traffic model with the cycle-level
// cut-through simulation for one workload's inter-layer activation traffic.
type NoCValidateRow struct {
	Workload    string
	Flows       int
	AnalyticSec float64 // Route latency bound
	SimSec      float64 // simulated makespan
	Ratio       float64 // Sim / Analytic (≥ 1; small = tight bound)
	EnergyJ     float64 // identical under both models by construction
}

// NoCValidateResult is the full validation sweep.
type NoCValidateResult struct {
	Rows []NoCValidateRow
}

// NoCValidate runs every zoo workload's layer-to-layer traffic through both
// NoC models. The analytic model (used inside the horizon simulation for
// speed) must be a tight lower bound on the cycle-level schedule.
func NoCValidate(sys core.System) (NoCValidateResult, error) {
	var res NoCValidateResult
	for _, model := range dnn.AllWorkloads() {
		flows := core.LayerTraffic(sys, model)
		ratio, sim, analytic := sys.Mesh.ValidateAgainstAnalytic(flows)
		res.Rows = append(res.Rows, NoCValidateRow{
			Workload:    model.Name,
			Flows:       len(flows),
			AnalyticSec: analytic.Latency,
			SimSec:      sim.Makespan,
			Ratio:       ratio,
			EnergyJ:     sim.Energy,
		})
	}
	return res, nil
}

// Render prints the validation table.
func (r NoCValidateResult) Render(w io.Writer) {
	fmt.Fprintf(w, "NoC model validation: analytic bound vs cycle-level cut-through simulation\n")
	fmt.Fprintf(w, "%-14s %7s %14s %14s %8s %12s\n",
		"Workload", "flows", "analytic (s)", "simulated (s)", "ratio", "energy (J)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %7d %14.3e %14.3e %8.2f %12.3e\n",
			row.Workload, row.Flows, row.AnalyticSec, row.SimSec, row.Ratio, row.EnergyJ)
	}
}

func runNoCValidate(w io.Writer) error {
	res, err := NoCValidate(core.DefaultSystem())
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}
