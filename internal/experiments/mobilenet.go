package experiments

import (
	"fmt"
	"io"

	"odin/internal/core"
	"odin/internal/dnn"
)

// MobileNetRow is one configuration's outcome on the extension workload.
type MobileNetRow struct {
	Name       string
	EDP        float64 // normalised to the 16×16 inference EDP
	Reprograms int
	MinAcc     float64
}

// MobileNetResult runs the Fig. 8 protocol on MobileNetV2 — a
// depthwise-separable architecture outside the paper's evaluation set.
// Depthwise blocks map as tiny block-diagonal groups, the worst case for
// coarse OUs (most of a 16×16 OU spans other groups' zero regions), so the
// layer-wise adaptivity argument should hold at least as strongly here.
type MobileNetResult struct {
	Model string
	Rows  []MobileNetRow
}

// MobileNet runs the extension study.
func MobileNet(sys core.System) (MobileNetResult, error) {
	cfg := defaultHorizon()
	res := MobileNetResult{Model: "MobileNetV2"}
	var norm float64
	for i, size := range core.StandardBaselineSizes() {
		wl, err := sys.Prepare(dnn.NewMobileNetV2())
		if err != nil {
			return res, err
		}
		b, err := core.NewBaseline(sys, wl, size)
		if err != nil {
			return res, err
		}
		sum := core.SimulateHorizon(b, cfg)
		if i == 0 {
			norm = sum.InferenceEDP()
		}
		res.Rows = append(res.Rows, MobileNetRow{
			Name:       size.String(),
			EDP:        sum.TotalEDP() / norm,
			Reprograms: sum.Reprograms,
			MinAcc:     sum.MinAccuracy,
		})
	}

	// Odin bootstrapped from the paper's nine workloads — MobileNetV2 is
	// fully unseen, including its layer type.
	pol, _, err := core.BootstrapPolicy(sys, dnn.AllWorkloads(), core.DefaultBootstrapConfig())
	if err != nil {
		return res, err
	}
	wl, err := sys.Prepare(dnn.NewMobileNetV2())
	if err != nil {
		return res, err
	}
	ctrl, err := core.NewController(sys, wl, pol, core.DefaultControllerOptions())
	if err != nil {
		return res, err
	}
	sum := core.SimulateHorizon(ctrl, cfg)
	res.Rows = append(res.Rows, MobileNetRow{
		Name:       "Odin",
		EDP:        sum.TotalEDP() / norm,
		Reprograms: sum.Reprograms,
		MinAcc:     sum.MinAccuracy,
	})
	return res, nil
}

// OdinRow returns the Odin row (always last).
func (r MobileNetResult) OdinRow() MobileNetRow { return r.Rows[len(r.Rows)-1] }

// Render prints the extension comparison.
func (r MobileNetResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Extension: %s (depthwise-separable, unseen architecture class)\n", r.Model)
	fmt.Fprintf(w, "EDP normalised to the 16×16 inference EDP\n")
	fmt.Fprintf(w, "%-8s %10s %12s %10s\n", "Config", "EDP", "reprograms", "min acc")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8s %10.3f %12d %9.1f%%\n", row.Name, row.EDP, row.Reprograms, row.MinAcc*100)
	}
	odin := r.OdinRow()
	for _, row := range r.Rows[:len(r.Rows)-1] {
		fmt.Fprintf(w, "Odin vs %s: %.1f×\n", row.Name, row.EDP/odin.EDP)
	}
}

func runMobileNet(w io.Writer) error {
	res, err := MobileNet(core.DefaultSystem())
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}
