package experiments

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"odin/internal/check"
)

// TestTraceGoldenFlame freezes the flame summary of one odinsim trace run.
// The span tree derives purely from the seed and the virtual timeline, so
// the rendered bytes must never drift without an intentional change.
//
// Refresh with:
//
//	go test ./internal/experiments -run TestTraceGoldenFlame -update
func TestTraceGoldenFlame(t *testing.T) {
	t.Parallel()
	res, err := RunTrace(TraceOptions{Model: "resnet18", Runs: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Tracer.WriteFlame(&buf); err != nil {
		t.Fatal(err)
	}
	check.Golden(t, filepath.Join("testdata", "traceflame.golden"), buf.Bytes())
}

// TestTraceAuditMatchesReports cross-checks the two observability artefacts
// against the controller's own report: one audit per run, evaluation counts
// in agreement, and a Chrome export that parses as JSON.
func TestTraceAuditMatchesReports(t *testing.T) {
	t.Parallel()
	res, err := RunTrace(TraceOptions{Model: "VGG11", Runs: 3})
	if err != nil {
		t.Fatal(err)
	}
	runs := res.Audit.Runs()
	if len(runs) != 3 || len(res.Reports) != 3 {
		t.Fatalf("got %d audits / %d reports, want 3/3", len(runs), len(res.Reports))
	}
	for i, a := range runs {
		rep := res.Reports[i]
		if a.Time != rep.Time {
			t.Fatalf("run %d audit time %g, report %g", i, a.Time, rep.Time)
		}
		if got := a.Evaluations(); got != rep.SearchEvaluations {
			t.Fatalf("run %d audit evaluations %d, report %d", i, got, rep.SearchEvaluations)
		}
		if got := a.Disagreements(); got != rep.Disagreements {
			t.Fatalf("run %d audit disagreements %d, report %d", i, got, rep.Disagreements)
		}
	}
	var buf bytes.Buffer
	if err := res.Tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != res.Tracer.Len() {
		t.Fatalf("export has %d events, tracer holds %d spans", len(doc.TraceEvents), res.Tracer.Len())
	}
}

// TestTraceModelResolution pins the case-insensitive zoo lookup and the
// error paths the CLI surfaces.
func TestTraceModelResolution(t *testing.T) {
	t.Parallel()
	lower, err := RunTrace(TraceOptions{Model: "resnet18", Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if lower.Model != "ResNet18" {
		t.Fatalf("folded lookup resolved %q, want ResNet18", lower.Model)
	}
	if _, err := RunTrace(TraceOptions{Model: "no-such-net"}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := RunTrace(TraceOptions{}); err == nil {
		t.Fatal("empty model accepted")
	}
}
