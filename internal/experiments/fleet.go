package experiments

import (
	"fmt"
	"io"
	"sort"

	"odin/internal/accuracy"
	"odin/internal/clock"
	"odin/internal/core"
	"odin/internal/dnn"
	"odin/internal/policy"
	"odin/internal/reram"
	"odin/internal/serve"
	"odin/internal/telemetry"
)

// FleetOptions parameterise the fleet-scale routing experiment.
type FleetOptions struct {
	// Chips is the fleet size (default 1024).
	Chips int
	// Requests is the trace length (default 4·Chips).
	Requests int
	// Seed labels the arrival trace (default 1).
	Seed uint64
}

func (o FleetOptions) withDefaults() FleetOptions {
	if o.Chips <= 0 {
		o.Chips = 1024
	}
	if o.Requests <= 0 {
		o.Requests = 4 * o.Chips
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// FleetRow is one router's replay of the shared trace on a fresh fleet.
type FleetRow struct {
	Router          string  // serve router name
	Churn           bool    // true when the replay hot-adds and removes chips
	Admitted        int     // requests admitted past admission control
	Shed            int     // requests shed by admission control
	ReprogramOnPath uint64  // requests whose own batch stalled on a forced write pass
	Maintenance     uint64  // off-path maintenance write passes (idle chips)
	P50             float64 // median sojourn (wait + service), seconds
	P99             float64 // 99th-percentile sojourn, seconds
	Checksum        uint64  // FNV-1a decision-log fingerprint (replay determinism handle)
}

// FleetResult is the data behind the fleet experiment: the same
// drift-staggered trace replayed under each router.
type FleetResult struct {
	Chips    int
	Requests int
	Models   []string
	Rate     float64 // arrival rate, requests/s
	Deadline float64 // forced-reprogram deadline the stagger spreads across, s
	Rows     []FleetRow
}

// fleetModel builds one of the experiment's tiny conv variants. Serving
// behavior at fleet scale is under test, not workload scale, so the models
// are three-layer stacks that decide in microseconds; width varies across
// variants so the trace mixes genuinely different service times.
func fleetModel(name string, width int) *dnn.Model {
	return &dnn.Model{
		Name:          name,
		Dataset:       dnn.Dataset{Name: "toy", InputH: 8, InputW: 8, Channels: 3, Classes: 10},
		IdealAccuracy: 0.9,
		Layers: []dnn.Layer{
			{Name: "c1", Type: dnn.Conv, KernelH: 3, KernelW: 3, InChannels: 3, OutChannels: width, InH: 8, InW: 8, Stride: 1},
			{Name: "c2", Type: dnn.Conv, KernelH: 3, KernelW: 3, InChannels: width, OutChannels: width, InH: 8, InW: 8, Stride: 1},
			{Name: "c3", Type: dnn.Conv, KernelH: 3, KernelW: 3, InChannels: width, OutChannels: 4, InH: 8, InW: 8, Stride: 1},
		},
	}
}

// fleetSystem accelerates conductance drift so forced-reprogram deadlines
// land on the trace's microsecond scale: Nu=2 steepens the power law, the
// small T0 shrinks the deadline to ~60 tiny-model service latencies, and
// the faster write pulses keep the reprogram stall well inside the drift
// router's steering window (1−margin)·deadline. Same constants as the
// serve package's drift property tests.
func fleetSystem() core.System {
	dev := reram.DefaultDeviceParams()
	dev.Nu = 2
	dev.T0 = 5e-6
	dev.WriteLatencyPerCell = 0.2e-9
	sys := core.DefaultSystem()
	sys.Device = dev
	sys.Acc = accuracy.Default(dev)
	return sys
}

// fleetProbe measures one variant on a throwaway controller: its service
// latency (for rate calibration) and its forced-reprogram deadline (for
// the stagger span). Deterministic, and shares nothing with the fleets.
func fleetProbe(sys core.System, m *dnn.Model) (lat, deadline float64, err error) {
	wl, err := sys.Prepare(m)
	if err != nil {
		return 0, 0, err
	}
	pol := policy.New(policy.Config{Grid: sys.Grid(), Seed: 1})
	ctrl, err := core.NewController(sys, wl, pol, core.ControllerOptions{})
	if err != nil {
		return 0, 0, err
	}
	return ctrl.RunInference(0).Latency, ctrl.ForcedReprogramAge(), nil
}

// sojournQuantile returns the exact q-quantile (nearest-rank) of the
// served requests' sojourn times (queue wait + service latency).
func sojournQuantile(sojourns []float64, q float64) float64 {
	if len(sojourns) == 0 {
		return 0
	}
	rank := int(q*float64(len(sojourns))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sojourns) {
		rank = len(sojourns) - 1
	}
	return sojourns[rank]
}

// Fleet replays one drift-staggered mixed-model trace over a ≥1000-chip
// fleet under each routing policy and reports what routing awareness of
// device drift buys at scale.
//
// The fleet is seeded with ProgrammedAt staggered uniformly across one
// forced-reprogram deadline, so at any instant a fixed slice of the fleet
// (1 − DriftMargin of it) sits inside the steering margin and a few chips
// are already due. Round-robin routes into those chips and pays the write
// pass on the request path (a many-service-latency stall lands in p99);
// the drift router steers the work to healthy peers and retires the due
// chips' write passes off-path while they are idle. The churn row replays
// the drift configuration with two hot adds and a mid-trace removal to pin
// that lifecycle events do not perturb the routing win — or determinism
// (its checksum is frozen in the golden file alongside the others).
func Fleet(opts FleetOptions) (*FleetResult, error) {
	opts = opts.withDefaults()
	sys := fleetSystem()

	variants := []*dnn.Model{
		fleetModel("tinyA", 8),
		fleetModel("tinyB", 12),
		fleetModel("tinyC", 16),
	}
	names := make([]string, len(variants))
	var maxLat float64
	deadline := 0.0
	for i, m := range variants {
		names[i] = m.Name
		lat, d, err := fleetProbe(sys, m)
		if err != nil {
			return nil, err
		}
		if lat > maxLat {
			maxLat = lat
		}
		if deadline == 0 || d < deadline {
			deadline = d
		}
	}

	// Half-utilisation arrivals: enough concurrency that routing matters,
	// low enough that queues drain and sheds stay rare.
	rate := 0.5 * float64(opts.Chips) / maxLat
	tr, err := serve.GenTrace(serve.TraceConfig{
		Seed: opts.Seed, Rate: rate, Requests: opts.Requests, Models: names,
	})
	if err != nil {
		return nil, err
	}

	// Chip i hosts variant i mod 3 and is back-dated by i/N of the
	// deadline: ages at t=0 cover [T0, deadline+T0) uniformly, so the
	// trace observes every drift phase at once instead of waiting a full
	// deadline for the fleet to age into the interesting regime.
	chips := make([]serve.ChipConfig, opts.Chips)
	for i := range chips {
		chips[i] = serve.ChipConfig{
			Custom:       variants[i%len(variants)],
			Seed:         uint64(i) + 1,
			ProgrammedAt: -deadline * float64(i) / float64(opts.Chips),
		}
	}

	run := func(router string, churn bool) (FleetRow, error) {
		reg := telemetry.NewRegistry()
		clk := clock.NewVirtual(0)
		cfg := serve.Config{
			Chips:      chips,
			Router:     router,
			QueueDepth: 8,
			MaxBatch:   4,
			Workers:    8,
			Clock:      clk,
			Registry:   reg,
			System:     &sys,
		}
		s, err := serve.NewServer(cfg)
		if err != nil {
			return FleetRow{}, err
		}
		s.Start()
		var ops []serve.FleetOp
		if churn {
			ops = []serve.FleetOp{
				{After: opts.Requests / 3, Add: &serve.ChipConfig{Custom: variants[0], Seed: uint64(opts.Chips) + 1}},
				{After: opts.Requests / 3, Add: &serve.ChipConfig{Custom: variants[1], Seed: uint64(opts.Chips) + 2}},
				{After: 2 * opts.Requests / 3, Remove: 1},
			}
		}
		res := serve.ReplayOps(s, clk, tr, ops)

		var sojourns []float64
		for _, r := range res.Responses {
			if !r.Shed && !r.Rejected && r.Err == "" {
				sojourns = append(sojourns, r.Wait+r.Latency)
			}
		}
		sort.Float64s(sojourns)
		return FleetRow{
			Router:          router,
			Churn:           churn,
			Admitted:        res.Admitted,
			Shed:            res.Shed,
			ReprogramOnPath: reg.Counter("odinserve_reprogram_on_path_requests_total", "").Value(),
			Maintenance:     reg.Counter("odinserve_maintenance_reprograms_total", "").Value(),
			P50:             sojournQuantile(sojourns, 0.50),
			P99:             sojournQuantile(sojourns, 0.99),
			Checksum:        res.Checksum,
		}, nil
	}

	out := &FleetResult{
		Chips: opts.Chips, Requests: opts.Requests, Models: names,
		Rate: rate, Deadline: deadline,
	}
	for _, rc := range []struct {
		router string
		churn  bool
	}{
		{"rr", false},
		{"least", false},
		{"drift", false},
		{"drift", true},
	} {
		row, err := run(rc.router, rc.churn)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the paper-style comparison table.
func (r *FleetResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fleet-scale routing: %d chips, %d-request mixed trace (%s)\n",
		r.Chips, r.Requests, joinNames(r.Models))
	fmt.Fprintf(w, "rate %.4g req/s; drift phases staggered across the %.4g s forced-reprogram deadline\n",
		r.Rate, r.Deadline)
	fmt.Fprintf(w, "%-8s %-5s %9s %6s %8s %6s %10s %10s  %s\n",
		"router", "churn", "admitted", "shed", "on-path", "maint", "p50(us)", "p99(us)", "checksum")
	var rr, drift *FleetRow
	for i := range r.Rows {
		row := &r.Rows[i]
		churn := "-"
		if row.Churn {
			churn = "+"
		}
		fmt.Fprintf(w, "%-8s %-5s %9d %6d %8d %6d %10.3f %10.3f  %#016x\n",
			row.Router, churn, row.Admitted, row.Shed,
			row.ReprogramOnPath, row.Maintenance,
			row.P50*1e6, row.P99*1e6, row.Checksum)
		if !row.Churn {
			switch row.Router {
			case "rr":
				rr = row
			case "drift":
				drift = row
			}
		}
	}
	if rr != nil && drift != nil && drift.P99 > 0 {
		fmt.Fprintf(w, "drift vs rr: on-path reprogram stalls %d -> %d, p99 %.2fx lower\n",
			rr.ReprogramOnPath, drift.ReprogramOnPath, rr.P99/drift.P99)
	}
	return nil
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

func runFleet(w io.Writer) error {
	res, err := Fleet(FleetOptions{})
	if err != nil {
		return err
	}
	return res.Render(w)
}
