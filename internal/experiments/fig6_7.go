package experiments

import (
	"fmt"
	"io"

	"odin/internal/core"
	"odin/internal/dnn"
	"odin/internal/ou"
)

// Fig6Row is one configuration's horizon totals for VGG11.
type Fig6Row struct {
	Name       string
	Reprograms int
	// Per-inference averages normalised to the 16×16 configuration's
	// *inference-only* energy/latency (the paper's normalisation).
	InferenceEnergy float64
	TotalEnergy     float64 // inference + reprogramming
	InferenceLat    float64
	TotalLat        float64
}

// Fig6Result compares Odin with the homogeneous baselines on energy and
// latency (paper Fig. 6) and carries the §V.C reprogramming counts.
type Fig6Result struct {
	Model string
	Rows  []Fig6Row // baselines in paper order, then Odin last
}

// Fig6 runs the VGG11 horizon for every configuration.
func Fig6(sys core.System) (Fig6Result, error) {
	model := dnn.NewVGG11()
	cfg := defaultHorizon()
	res := Fig6Result{Model: model.Name}

	summaries := make([]core.HorizonSummary, 0, 5)
	names := make([]string, 0, 5)
	var norm core.HorizonSummary

	for i, size := range core.StandardBaselineSizes() {
		wl, err := sys.Prepare(dnn.NewVGG11())
		if err != nil {
			return Fig6Result{}, err
		}
		b, err := core.NewBaseline(sys, wl, size)
		if err != nil {
			return Fig6Result{}, err
		}
		sum := core.SimulateHorizon(b, cfg)
		if i == 0 {
			norm = sum // 16×16 is the normalisation basis
		}
		summaries = append(summaries, sum)
		names = append(names, size.String())
	}

	ctrl, _, err := bootstrapFor(sys, model)
	if err != nil {
		return Fig6Result{}, err
	}
	odin := core.SimulateHorizon(ctrl, cfg)
	summaries = append(summaries, odin)
	names = append(names, "Odin")

	for i, sum := range summaries {
		res.Rows = append(res.Rows, Fig6Row{
			Name:            names[i],
			Reprograms:      sum.Reprograms,
			InferenceEnergy: sum.MeanInferenceEnergy() / norm.MeanInferenceEnergy(),
			TotalEnergy:     sum.TotalEnergy() / norm.MeanInferenceEnergy(),
			InferenceLat:    sum.MeanInferenceLatency() / norm.MeanInferenceLatency(),
			TotalLat:        sum.TotalLatency() / norm.MeanInferenceLatency(),
		})
	}
	return res, nil
}

// OdinRow returns the Odin row (always last).
func (r Fig6Result) OdinRow() Fig6Row { return r.Rows[len(r.Rows)-1] }

// Render prints the normalised energy/latency bars and reprogram counts.
func (r Fig6Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 6: energy and latency of OU configurations for %s (CIFAR-10),\n", r.Model)
	fmt.Fprintf(w, "normalised to the 16×16 configuration's inference energy/latency; horizon t0→1e8 s\n")
	fmt.Fprintf(w, "%-8s %10s %12s %10s %12s %12s\n",
		"Config", "Einf", "Etotal", "Linf", "Ltotal", "Reprograms")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8s %10.3f %12.3f %10.3f %12.3f %12d\n",
			row.Name, row.InferenceEnergy, row.TotalEnergy, row.InferenceLat, row.TotalLat, row.Reprograms)
	}
	odin := r.OdinRow()
	for _, row := range r.Rows[:len(r.Rows)-1] {
		fmt.Fprintf(w, "Odin reduces total energy %.1f× and total latency %.1f× vs %s\n",
			row.TotalEnergy/odin.TotalEnergy, row.TotalLat/odin.TotalLat, row.Name)
	}
}

func runFig6(w io.Writer) error {
	res, err := Fig6(core.DefaultSystem())
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}

// Fig7Series is one accuracy-over-time curve.
type Fig7Series struct {
	Name    string
	Times   []float64
	Acc     []float64 // estimated accuracy (fraction) per sample
	MinAcc  float64
	Reprogs int
}

// Fig7Result reproduces the accuracy study: homogeneous OUs with and
// without reprogramming vs Odin, over the inference-run sweep.
type Fig7Result struct {
	Model    string
	IdealAcc float64
	Series   []Fig7Series
}

// Fig7 runs the accuracy sweeps.
func Fig7(sys core.System) (Fig7Result, error) {
	model := dnn.NewVGG11()
	cfg := defaultHorizon()
	cfg.RecordEvery = cfg.Epochs / 50

	res := Fig7Result{Model: model.Name, IdealAcc: model.IdealAccuracy}

	addBaseline := func(size ou.Size, disable bool, name string) error {
		wl, err := sys.Prepare(dnn.NewVGG11())
		if err != nil {
			return err
		}
		b, err := core.NewBaseline(sys, wl, size)
		if err != nil {
			return err
		}
		b.DisableReprogram = disable
		sum := core.SimulateHorizon(b, cfg)
		res.Series = append(res.Series, seriesFrom(name, sum))
		return nil
	}
	if err := addBaseline(ou.Size{R: 16, C: 16}, true, "16×16 w/o reprog"); err != nil {
		return res, err
	}
	if err := addBaseline(ou.Size{R: 16, C: 16}, false, "16×16 w/ reprog"); err != nil {
		return res, err
	}
	if err := addBaseline(ou.Size{R: 8, C: 4}, true, "8×4 w/o reprog"); err != nil {
		return res, err
	}
	if err := addBaseline(ou.Size{R: 8, C: 4}, false, "8×4 w/ reprog"); err != nil {
		return res, err
	}
	ctrl, _, err := bootstrapFor(sys, model)
	if err != nil {
		return res, err
	}
	res.Series = append(res.Series, seriesFrom("Odin", core.SimulateHorizon(ctrl, cfg)))
	return res, nil
}

func seriesFrom(name string, sum core.HorizonSummary) Fig7Series {
	s := Fig7Series{Name: name, MinAcc: sum.MinAccuracy, Reprogs: sum.Reprograms}
	for _, sample := range sum.Samples {
		s.Times = append(s.Times, sample.Time)
		s.Acc = append(s.Acc, sample.Accuracy)
	}
	return s
}

// Render prints each curve at a few sample points plus the summary drop.
func (r Fig7Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 7: inference accuracy over runs, %s (CIFAR-10); ideal accuracy %.1f%%\n",
		r.Model, r.IdealAcc*100)
	for _, s := range r.Series {
		fmt.Fprintf(w, "%-18s reprograms=%-5d min acc=%.1f%% (drop %.1f pts)\n",
			s.Name, s.Reprogs, s.MinAcc*100, (r.IdealAcc-s.MinAcc)*100)
		stride := len(s.Times) / 10
		if stride == 0 {
			stride = 1
		}
		for i := 0; i < len(s.Times); i += stride {
			fmt.Fprintf(w, "   t=%.1E acc=%.1f%%\n", s.Times[i], s.Acc[i]*100)
		}
	}
}

func runFig7(w io.Writer) error {
	res, err := Fig7(core.DefaultSystem())
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}
