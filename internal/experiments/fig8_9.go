package experiments

import (
	"fmt"
	"io"

	"odin/internal/core"
	"odin/internal/dnn"
	"odin/internal/par"
)

// Fig8Row is one workload's normalised EDP bars.
type Fig8Row struct {
	Workload string
	Dataset  string
	// EDP per configuration (paper order: 16×16, 16×4, 9×8, 8×4, Odin),
	// normalised to the workload's 16×16 *inference* EDP.
	EDP map[string]float64
	// ReductionVsOdin[name] = EDP(name)/EDP(Odin).
	ReductionVsOdin map[string]float64
}

// Fig8Result is the cross-workload EDP comparison.
type Fig8Result struct {
	Rows []Fig8Row
	// MeanReduction[name] is the average over workloads of
	// EDP(name)/EDP(Odin) — the paper reports 3.9×, 2.5×, 1.5×, 1.9×.
	MeanReduction map[string]float64
	// MaxReduction is the largest per-workload reduction (paper: up to 8.7×
	// across the sensitivity study).
	MaxReduction float64
}

// Fig8 runs every zoo workload with Odin and the four homogeneous
// baselines, applying the leave-one-out bootstrap per workload. Workloads
// are simulated in parallel (each goroutine fills only rows[i]; every
// horizon gets its own freshly prepared workload and bootstrapped
// controller); the mean/max reductions are then reduced over the rows in
// workload order, so the rounding — and the rendered bytes — match the
// sequential loop exactly.
func Fig8(sys core.System) (Fig8Result, error) {
	cfg := defaultHorizon()
	res := Fig8Result{MeanReduction: map[string]float64{}}
	baselineNames := make([]string, 0, 4)
	for _, s := range core.StandardBaselineSizes() {
		baselineNames = append(baselineNames, s.String())
	}

	models := dnn.AllWorkloads()
	rows := make([]Fig8Row, len(models))
	if err := par.ForEach(0, len(models), func(i int) error {
		model := models[i]
		row := Fig8Row{
			Workload:        model.Name,
			Dataset:         model.Dataset.Name,
			EDP:             map[string]float64{},
			ReductionVsOdin: map[string]float64{},
		}
		var norm float64
		for bi, size := range core.StandardBaselineSizes() {
			wl, err := sys.Prepare(cloneOf(model.Name))
			if err != nil {
				return err
			}
			b, err := core.NewBaseline(sys, wl, size)
			if err != nil {
				return err
			}
			sum := core.SimulateHorizon(b, cfg)
			if bi == 0 {
				norm = sum.InferenceEDP()
			}
			row.EDP[size.String()] = sum.TotalEDP() / norm
		}
		ctrl, _, err := bootstrapFor(sys, model)
		if err != nil {
			return err
		}
		odin := core.SimulateHorizon(ctrl, cfg)
		row.EDP["Odin"] = odin.TotalEDP() / norm
		for _, name := range baselineNames {
			red := row.EDP[name] / row.EDP["Odin"]
			row.ReductionVsOdin[name] = red
		}
		rows[i] = row
		return nil
	}); err != nil {
		return res, err
	}

	for _, row := range rows {
		for _, name := range baselineNames {
			red := row.ReductionVsOdin[name]
			res.MeanReduction[name] += red
			if red > res.MaxReduction {
				res.MaxReduction = red
			}
		}
		res.Rows = append(res.Rows, row)
	}
	for name := range res.MeanReduction {
		res.MeanReduction[name] /= float64(len(res.Rows))
	}
	return res, nil
}

// cloneOf returns a fresh zoo instance by name (workloads are mutated by
// pruning, so each runner gets its own copy).
func cloneOf(name string) *dnn.Model {
	m, err := dnn.ByName(name)
	if err != nil {
		panic(fmt.Sprintf("experiments: clone workload: %v", err))
	}
	return m
}

// Render prints the per-workload bars and the headline averages.
func (r Fig8Result) Render(w io.Writer) {
	order := []string{"16×16", "16×4", "9×8", "8×4", "Odin"}
	fmt.Fprintf(w, "Fig. 8: EDP comparison across DNN workloads (normalised to each workload's 16×16 inference EDP)\n")
	fmt.Fprintf(w, "%-14s %-13s", "Workload", "Dataset")
	for _, name := range order {
		fmt.Fprintf(w, "%10s", name)
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %-13s", row.Workload, row.Dataset)
		for _, name := range order {
			fmt.Fprintf(w, "%10.3f", row.EDP[name])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "Average EDP reduction of Odin vs:")
	for _, name := range order[:4] {
		fmt.Fprintf(w, "  %s %.1f×", name, r.MeanReduction[name])
	}
	fmt.Fprintf(w, "\nMax per-workload reduction: %.1f×\n", r.MaxReduction)
}

func runFig8(w io.Writer) error {
	res, err := Fig8(core.DefaultSystem())
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}

// Fig9Row is one crossbar size's EDP ratios (baseline EDP / Odin EDP).
type Fig9Row struct {
	CrossbarSize int
	Ratios       map[string]float64
	MaxRatio     float64
}

// Fig9Result is the crossbar-size sensitivity study on ResNet34.
type Fig9Result struct {
	Model string
	Rows  []Fig9Row
}

// Fig9 sweeps crossbar sizes 128², 64², 32² (ResNet34 / CIFAR-100).
func Fig9(base core.System, sizes []int) (Fig9Result, error) {
	if len(sizes) == 0 {
		sizes = []int{128, 64, 32}
	}
	cfg := defaultHorizon()
	res := Fig9Result{Model: "ResNet34", Rows: make([]Fig9Row, len(sizes))}
	// Index-sharded crossbar-size sweep: each goroutine scales its own copy
	// of the base system and writes only res.Rows[i].
	if err := par.ForEach(0, len(sizes), func(i int) error {
		xb := sizes[i]
		sys := base.WithCrossbarSize(xb)
		row := Fig9Row{CrossbarSize: xb, Ratios: map[string]float64{}}

		ctrl, _, err := bootstrapFor(sys, dnn.NewResNet34())
		if err != nil {
			return err
		}
		odin := core.SimulateHorizon(ctrl, cfg)

		for _, size := range core.StandardBaselineSizes() {
			if size.R > xb || size.C > xb {
				continue // configuration does not fit this crossbar
			}
			wl, err := sys.Prepare(dnn.NewResNet34())
			if err != nil {
				return err
			}
			b, err := core.NewBaseline(sys, wl, size)
			if err != nil {
				return err
			}
			sum := core.SimulateHorizon(b, cfg)
			ratio := sum.TotalEDP() / odin.TotalEDP()
			row.Ratios[size.String()] = ratio
			if ratio > row.MaxRatio {
				row.MaxRatio = ratio
			}
		}
		res.Rows[i] = row
		return nil
	}); err != nil {
		return Fig9Result{Model: res.Model}, err
	}
	return res, nil
}

// Render prints the normalised EDP per crossbar size.
func (r Fig9Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 9: EDP of homogeneous OUs normalised to Odin, %s (CIFAR-100), varying crossbar size\n", r.Model)
	order := []string{"16×16", "16×4", "9×8", "8×4"}
	fmt.Fprintf(w, "%-10s", "Crossbar")
	for _, name := range order {
		fmt.Fprintf(w, "%10s", name)
	}
	fmt.Fprintf(w, "%10s\n", "max")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%dx%-6d", row.CrossbarSize, row.CrossbarSize)
		for _, name := range order {
			if v, ok := row.Ratios[name]; ok {
				fmt.Fprintf(w, "%10.2f", v)
			} else {
				fmt.Fprintf(w, "%10s", "-")
			}
		}
		fmt.Fprintf(w, "%10.2f\n", row.MaxRatio)
	}
}

func runFig9(w io.Writer) error {
	res, err := Fig9(core.DefaultSystem(), nil)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}
