package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"odin/internal/core"
	"odin/internal/dnn"
	"odin/internal/ou"
	"odin/internal/par"
	"odin/internal/search"
)

// bestSizes returns the constrained EDP-optimal OU size for every layer of
// the workload at the given device age (exhaustive search — the optimum
// Odin's online loop converges to). Layers with no feasible size fall back
// to the smallest grid size, mirroring the controller. Layers are searched
// in parallel: each objective only reads sys/wl and each goroutine writes
// only sizes[j], so the result is worker-count independent.
func bestSizes(sys core.System, wl *core.Workload, age float64) []ou.Size {
	grid := sys.Grid()
	sizes := make([]ou.Size, wl.Layers())
	par.Each(0, len(sizes), func(j int) {
		res := search.Exhaustive(grid, core.LayerObjective(sys, wl, j, age))
		if res.Found {
			sizes[j] = res.Best
		} else {
			sizes[j] = grid.SizeAt(0, 0)
		}
	})
	return sizes
}

// Fig3Row is one layer of the Fig. 3 plot.
type Fig3Row struct {
	Layer          int
	Name           string
	Size           ou.Size
	Product        int
	WeightSparsity float64 // percent
	Skip           bool
}

// Fig3Result holds the layer-wise OU sizes and sparsity for ResNet18 at t₀.
type Fig3Result struct {
	Model string
	Rows  []Fig3Row
}

// Fig3 reproduces the Fig. 3 study.
func Fig3(sys core.System) (Fig3Result, error) {
	model := dnn.NewResNet18()
	wl, err := sys.Prepare(model)
	if err != nil {
		return Fig3Result{}, err
	}
	sizes := bestSizes(sys, wl, sys.Device.T0)
	res := Fig3Result{Model: model.Name}
	for j, s := range sizes {
		l := model.Layers[j]
		res.Rows = append(res.Rows, Fig3Row{
			Layer:          j + 1,
			Name:           l.Name,
			Size:           s,
			Product:        s.Product(),
			WeightSparsity: l.WeightSparsity * 100,
			Skip:           l.Skip,
		})
	}
	return res, nil
}

// Render prints the per-layer series of Fig. 3.
func (r Fig3Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 3: Layer-wise OU size and weight sparsity for %s (CIFAR-10) at t = t0\n", r.Model)
	fmt.Fprintf(w, "%-5s %-22s %-8s %-10s %s\n", "Layer", "Name", "OU", "R×C", "Sparsity(%)")
	for _, row := range r.Rows {
		tag := ""
		if row.Skip {
			tag = " (skip)"
		}
		fmt.Fprintf(w, "%-5d %-22s %-8s %-10d %.1f%s\n",
			row.Layer, row.Name, row.Size.String(), row.Product, row.WeightSparsity, tag)
	}
}

func runFig3(w io.Writer) error {
	res, err := Fig3(core.DefaultSystem())
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}

// Fig4Result is the OU-size distribution at a set of device ages: for each
// age, how many DNN layers use each OU configuration.
type Fig4Result struct {
	Model string
	Ages  []float64
	// Counts[i] maps "R×C" → number of layers at Ages[i].
	Counts []map[string]int
	// MeanProduct[i] is the layer-average R×C product at Ages[i] (the
	// distribution's centre of mass, which shifts left over time).
	MeanProduct []float64
}

// Fig4 reproduces the distribution-shift study for ResNet18.
func Fig4(sys core.System, ages []float64) (Fig4Result, error) {
	if len(ages) == 0 {
		ages = []float64{1, 1e2, 1e4, 1e6, 5e7}
	}
	model := dnn.NewResNet18()
	wl, err := sys.Prepare(model)
	if err != nil {
		return Fig4Result{}, err
	}
	res := Fig4Result{
		Model:       model.Name,
		Ages:        ages,
		Counts:      make([]map[string]int, len(ages)),
		MeanProduct: make([]float64, len(ages)),
	}
	// Index-sharded age sweep: each goroutine fills only res.Counts[i] /
	// res.MeanProduct[i], so the histogram is identical at any worker count.
	par.Each(0, len(ages), func(i int) {
		sizes := bestSizes(sys, wl, ages[i])
		counts := make(map[string]int)
		total := 0
		for _, s := range sizes {
			counts[s.String()]++
			total += s.Product()
		}
		res.Counts[i] = counts
		res.MeanProduct[i] = float64(total) / float64(len(sizes))
	})
	return res, nil
}

// Render prints a histogram per age.
func (r Fig4Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 4: OU size distribution shift under conductance drift (%s, CIFAR-10)\n", r.Model)
	for i, age := range r.Ages {
		fmt.Fprintf(w, "t = %.2E s (mean R×C product %.0f):\n", age, r.MeanProduct[i])
		keys := make([]string, 0, len(r.Counts[i]))
		for k := range r.Counts[i] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			n := r.Counts[i][k]
			fmt.Fprintf(w, "  %-8s %2d layers %s\n", k, n, strings.Repeat("#", n))
		}
	}
}

func runFig4(w io.Writer) error {
	res, err := Fig4(core.DefaultSystem(), nil)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}
