package experiments

import (
	"fmt"
	"io"

	"odin/internal/core"
)

// ProactiveRow is one controller variant's horizon outcome.
type ProactiveRow struct {
	Name       string
	Reprograms int
	Energy     float64 // per-inference total energy (J)
	Latency    float64 // per-inference total latency (s)
	EDP        float64
	MinAcc     float64
}

// ProactiveResult compares the paper's Odin (reprogram only when η is
// unsatisfiable) with the proactive extension (also reprogram when the
// drift-constrained inference latency degrades past a factor of the
// fresh-device latency), across several trigger factors.
type ProactiveResult struct {
	Model string
	Rows  []ProactiveRow
}

// Proactive runs the comparison on VGG11.
func Proactive(sys core.System, factors []float64) (ProactiveResult, error) {
	if len(factors) == 0 {
		factors = []float64{1.2, 1.5, 2}
	}
	cfg := defaultHorizon()
	res := ProactiveResult{Model: "VGG11"}

	run := func(name string, opts core.ControllerOptions) error {
		sum, _, err := odinSummaryFor(sys, res.Model, opts, cfg)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, ProactiveRow{
			Name:       name,
			Reprograms: sum.Reprograms,
			Energy:     sum.TotalEnergy(),
			Latency:    sum.TotalLatency(),
			EDP:        sum.TotalEDP(),
			MinAcc:     sum.MinAccuracy,
		})
		return nil
	}

	if err := run("Odin (paper)", core.DefaultControllerOptions()); err != nil {
		return res, err
	}
	for _, f := range factors {
		opts := core.DefaultControllerOptions()
		opts.ProactiveReprogram = true
		opts.ProactiveFactor = f
		if err := run(fmt.Sprintf("proactive %.1f×", f), opts); err != nil {
			return res, err
		}
	}
	return res, nil
}

// Render prints the comparison.
func (r ProactiveResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Extension: proactive reprogramming (%s); trigger = latency degradation factor\n", r.Model)
	fmt.Fprintf(w, "%-16s %12s %14s %14s %14s %10s\n",
		"Variant", "reprograms", "E/inf (J)", "L/inf (s)", "EDP", "min acc")
	base := r.Rows[0].EDP
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s %12d %14.3e %14.3e %14.3e %9.1f%%\n",
			row.Name, row.Reprograms, row.Energy, row.Latency, row.EDP, row.MinAcc*100)
	}
	best := r.Rows[0]
	for _, row := range r.Rows[1:] {
		if row.EDP < best.EDP {
			best = row
		}
	}
	fmt.Fprintf(w, "best variant: %s (%.2f× the paper controller's EDP)\n", best.Name, best.EDP/base)
}

func runProactive(w io.Writer) error {
	res, err := Proactive(core.DefaultSystem(), nil)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}
