// Package experiments regenerates every table and figure of the paper's
// evaluation (§V). Each experiment has a typed driver returning the data
// behind the artefact and a Render method that prints the same rows/series
// the paper reports. The cmd/odinsim CLI and the repository's benchmark
// harness both run through this package, so numbers in EXPERIMENTS.md are
// reproducible from a single code path.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"odin/internal/core"
	"odin/internal/dnn"
)

// Experiment is a runnable evaluation artefact. Run prints the
// paper-style rows; Data returns the typed result for machine-readable
// output (cmd/odinsim -json).
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer) error
	Data  func() (any, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"tab1", "Table I: PIM architecture specifications", runTable1, func() (any, error) { return Table1(core.DefaultSystem()), nil }},
		{"tab2", "Table II: parameters of ReRAM crossbar system", runTable2, func() (any, error) { return Table2(core.DefaultSystem()), nil }},
		{"fig3", "Fig. 3: layer-wise OU size and weight sparsity (ResNet18, CIFAR-10)", runFig3, func() (any, error) { return Fig3(core.DefaultSystem()) }},
		{"fig4", "Fig. 4: OU size distribution shift under conductance drift (ResNet18)", runFig4, func() (any, error) { return Fig4(core.DefaultSystem(), nil) }},
		{"fig5", "Fig. 5: offline vs online (RB/EX) layer-wise OU configurations (VGG11)", runFig5, func() (any, error) { return Fig5(core.DefaultSystem()) }},
		{"fig6", "Fig. 6: energy and latency vs homogeneous OUs (VGG11, CIFAR-10)", runFig6, func() (any, error) { return Fig6(core.DefaultSystem()) }},
		{"fig7", "Fig. 7: inference accuracy with and without reprogramming (VGG11)", runFig7, func() (any, error) { return Fig7(core.DefaultSystem()) }},
		{"fig8", "Fig. 8: EDP across all DNN workloads (normalised to 16×16 inference EDP)", runFig8, func() (any, error) { return Fig8(core.DefaultSystem()) }},
		{"fig9", "Fig. 9: EDP vs crossbar size (ResNet34, CIFAR-100)", runFig9, func() (any, error) { return Fig9(core.DefaultSystem(), nil) }},
		{"overhead", "Sec. V-E: online learning and OU control overhead analysis", runOverhead, func() (any, error) { return Overhead(core.DefaultSystem()) }},
		{"abl-k", "Ablation: resource-bounded search budget K", runAblSearchK, func() (any, error) { return AblSearchK(core.DefaultSystem(), nil) }},
		{"abl-buffer", "Ablation: training-buffer capacity", runAblBuffer, func() (any, error) { return AblBuffer(core.DefaultSystem(), nil) }},
		{"abl-eta", "Ablation: non-ideality threshold η", runAblEta, func() (any, error) { return AblEta(core.DefaultSystem(), nil) }},
		{"abl-rate", "Ablation: served inference rate (reprogramming crossover)", runAblRate, func() (any, error) { return AblRate(core.DefaultSystem(), nil) }},
		{"abl-cluster", "Ablation: pruning cluster width vs optimal OU width", runAblCluster, func() (any, error) { return AblCluster(core.DefaultSystem(), nil) }},
		{"abl-policy", "Ablation: policy trunk architecture", runAblPolicy, func() (any, error) { return AblPolicy(core.DefaultSystem(), nil) }},
		{"noc-validate", "NoC model validation: analytic bound vs cut-through simulation", runNoCValidate, func() (any, error) { return NoCValidate(core.DefaultSystem()) }},
		{"lifetime", "Extension: write endurance and projected device lifetime", runLifetime, func() (any, error) { return Lifetime(core.DefaultSystem()) }},
		{"proactive", "Extension: proactive reprogramming vs the paper's trigger", runProactive, func() (any, error) { return Proactive(core.DefaultSystem(), nil) }},
		{"mobilenet", "Extension: MobileNetV2 (depthwise-separable, unseen architecture class)", runMobileNet, func() (any, error) { return MobileNet(core.DefaultSystem()) }},
		{"empirical", "Device-level validation: class-flip rate on crossbar-executed CNN", runEmpirical, func() (any, error) { return Empirical(core.DefaultSystem(), nil, nil) }},
		{"confidence", "Extension: confidence-gated search routing (RB/EX hybrid)", runConfidence, func() (any, error) { return Confidence(core.DefaultSystem(), nil) }},
		{"rowskip", "Model validation: analytic vs measured row-segment skipping", runRowSkip, func() (any, error) { return RowSkip(core.DefaultSystem(), nil) }},
		{"indexes", "Sec. II motivation: index-table storage of offline OU compression vs Odin", runIndexes, func() (any, error) { return Indexes(core.DefaultSystem(), nil) }},
		{"noise", "Device-level read-noise sensitivity (thermal noise axis)", runNoise, func() (any, error) { return Noise(core.DefaultSystem(), nil) }},
		{"opt-compare", "Extension: line-6 optimizer head-to-head (rb/ex/bo/pareto)", runOptCompare, func() (any, error) { return OptCompare(core.DefaultSystem()) }},
		{"fleet", "Extension: fleet-scale serving — drift-aware routing vs round-robin (1024 chips)", runFleet, func() (any, error) { return Fleet(FleetOptions{}) }},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(All()))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}

// defaultHorizon is the evaluation horizon shared by the comparative
// experiments: t₀ → 10⁸ s, 1000 decision epochs, the default inference rate.
func defaultHorizon() core.HorizonConfig {
	return core.HorizonConfig{End: 1e8, Epochs: 1000}
}

// bootstrapFor builds the offline policy for an unseen workload using the
// paper's leave-one-out protocol: the policy is trained on every zoo family
// except the target's.
func bootstrapFor(sys core.System, target *dnn.Model) (*core.Controller, *core.Workload, error) {
	family := familyOf(target.Name)
	known := core.LeaveOut(dnn.AllWorkloads(), family)
	pol, _, err := core.BootstrapPolicy(sys, known, core.DefaultBootstrapConfig())
	if err != nil {
		return nil, nil, err
	}
	wl, err := sys.Prepare(target)
	if err != nil {
		return nil, nil, err
	}
	ctrl, err := core.NewController(sys, wl, pol, core.DefaultControllerOptions())
	if err != nil {
		return nil, nil, err
	}
	return ctrl, wl, nil
}

// familyOf maps a model name to its leave-one-out family substring.
func familyOf(name string) string {
	switch {
	case len(name) >= 3 && name[:3] == "VGG":
		return "VGG"
	case len(name) >= 6 && name[:6] == "ResNet":
		return "ResNet"
	case len(name) >= 5 && name[:5] == "Dense":
		return "DenseNet"
	case name == "ViT":
		return "ViT"
	case name == "GoogLeNet":
		return "GoogLeNet"
	default:
		return name
	}
}
