package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"odin/internal/clock"
	"odin/internal/telemetry"
)

// cheapIDs is a subset of All() whose drivers complete in milliseconds on
// one core (no horizon simulation, no bootstrap), deliberately including
// ids whose alphabetical order differs from paper order (abl-cluster vs
// tab1) so ordering regressions cannot hide. Determinism over the heavy
// drivers is covered by the golden-through-engine test below and by the
// drivers' own trend tests.
var cheapIDs = []string{
	"tab1", "tab2", "fig3", "fig4", "overhead",
	"abl-cluster", "noc-validate", "rowskip", "indexes",
}

// sequentialReference reproduces the pre-engine odinsim loop byte for
// byte: progress header, artefact body, timing footer, strictly in order,
// timings from a virtual clock pinned at 0.
func sequentialReference(t *testing.T, ids []string) []byte {
	t.Helper()
	clk := clock.NewVirtual(0)
	var buf bytes.Buffer
	for _, id := range ids {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&buf, "==> %s (%s)\n", e.Title, e.ID)
		start := clk.Now()
		if err := e.Run(&buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		fmt.Fprintf(&buf, "<== %s done in %.3fs\n\n", e.ID, clk.Now()-start)
	}
	return buf.Bytes()
}

// TestRunAllByteIdenticalAcrossWorkerCounts is the engine's determinism
// contract: RunAll output equals the sequential loop's bytes at every
// worker count, including the GOMAXPROCS default.
func TestRunAllByteIdenticalAcrossWorkerCounts(t *testing.T) {
	t.Parallel()
	want := sequentialReference(t, cheapIDs)
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		var got bytes.Buffer
		rep, err := RunAll(&got, RunOptions{Workers: workers, IDs: cheapIDs})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("workers=%d: output differs from sequential loop\n got: %q\nwant: %q",
				workers, got.String(), want)
		}
		if len(rep.Timings) != len(cheapIDs) {
			t.Fatalf("workers=%d: %d timings, want %d", workers, len(rep.Timings), len(cheapIDs))
		}
		for i, tm := range rep.Timings {
			if tm.ID != cheapIDs[i] {
				t.Fatalf("workers=%d: timing %d is %s, want %s (flush order)", workers, i, tm.ID, cheapIDs[i])
			}
		}
	}
}

// TestRunAllThroughGoldens drives the frozen artefacts through the
// parallel engine: RunAll over the golden ids on a multi-worker pool must
// produce exactly header + golden bytes + footer for each experiment, in
// order. This extends the golden protection from the drivers to the
// engine itself.
func TestRunAllThroughGoldens(t *testing.T) {
	t.Parallel()
	ids := []string{"tab1", "tab2", "fig3", "fig6", "overhead"}
	var want bytes.Buffer
	for _, id := range ids {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		body, err := os.ReadFile(filepath.Join("testdata", id+".golden"))
		if err != nil {
			t.Fatalf("golden for %s: %v", id, err)
		}
		fmt.Fprintf(&want, "==> %s (%s)\n", e.Title, e.ID)
		want.Write(body)
		fmt.Fprintf(&want, "<== %s done in 0.000s\n\n", e.ID)
	}
	var got bytes.Buffer
	if _, err := RunAll(&got, RunOptions{Workers: 4, IDs: ids}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("engine output diverges from goldens\n got: %q\nwant: %q", got.String(), want.String())
	}
}

// TestRunAllJSONPaperOrderAndWorkerIndependence pins the runJSON ordering
// fix: keys appear in selection order, not encoding/json's alphabetical
// map order, and the bytes are identical across worker counts.
func TestRunAllJSONPaperOrderAndWorkerIndependence(t *testing.T) {
	t.Parallel()
	// Alphabetical order would be abl-cluster, noc-validate, tab1.
	ids := []string{"tab1", "abl-cluster", "noc-validate"}
	var ref bytes.Buffer
	if err := RunAllJSON(&ref, RunOptions{Workers: 1, IDs: ids}); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(ref.Bytes()) {
		t.Fatalf("RunAllJSON emitted invalid JSON: %q", ref.String())
	}
	prev := -1
	for _, id := range ids {
		at := bytes.Index(ref.Bytes(), []byte(`"`+id+`":`))
		if at < 0 {
			t.Fatalf("key %q missing from JSON output", id)
		}
		if at < prev {
			t.Fatalf("key %q out of selection order (alphabetical leak)", id)
		}
		prev = at
	}
	var decoded map[string]any
	if err := json.Unmarshal(ref.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(ids) {
		t.Fatalf("decoded %d keys, want %d", len(decoded), len(ids))
	}
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		var got bytes.Buffer
		if err := RunAllJSON(&got, RunOptions{Workers: workers, IDs: ids}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(got.Bytes(), ref.Bytes()) {
			t.Fatalf("workers=%d: JSON bytes differ from workers=1", workers)
		}
	}
}

func TestRunAllUnknownIDFails(t *testing.T) {
	t.Parallel()
	if _, err := RunAll(io.Discard, RunOptions{IDs: []string{"nope"}}); err == nil {
		t.Fatal("RunAll accepted an unknown experiment id")
	}
	if err := RunAllJSON(io.Discard, RunOptions{IDs: []string{"nope"}}); err == nil {
		t.Fatal("RunAllJSON accepted an unknown experiment id")
	}
}

// synth builds a synthetic experiment for engine-semantics tests.
func synth(id string, run func(w io.Writer) error) Experiment {
	return Experiment{
		ID:    id,
		Title: "synthetic " + id,
		Run:   run,
		Data:  func() (any, error) { return id, nil },
	}
}

// TestRunSelectedFlushOrderSurvivesOutOfOrderCompletion forces the first
// experiment to finish last: with >1 worker, experiment 0 blocks until the
// final experiment has run, so the pool completes everything out of flush
// order and the ordered flush is what restores the sequential bytes.
func TestRunSelectedFlushOrderSurvivesOutOfOrderCompletion(t *testing.T) {
	t.Parallel()
	const n = 16
	var lastDone atomic.Bool
	exps := make([]Experiment, n)
	for i := 0; i < n; i++ {
		i := i
		exps[i] = synth(fmt.Sprintf("s%02d", i), func(w io.Writer) error {
			if i == 0 {
				for !lastDone.Load() {
					runtime.Gosched()
				}
			}
			if i == n-1 {
				lastDone.Store(true)
			}
			fmt.Fprintf(w, "body %02d\n", i)
			return nil
		})
	}
	var got bytes.Buffer
	if _, err := runSelected(&got, exps, RunOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for i := 0; i < n; i++ {
		fmt.Fprintf(&want, "==> synthetic s%02d (s%02d)\nbody %02d\n<== s%02d done in 0.000s\n\n", i, i, i, i)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("flush order broken\n got: %q\nwant: %q", got.String(), want.String())
	}
}

// TestRunSelectedFailureMatchesSequentialBytes pins the failure contract:
// output stops after the failing experiment's partial bytes — exactly what
// the sequential loop would have printed — and later experiments do not
// leak into the stream, at any worker count.
func TestRunSelectedFailureMatchesSequentialBytes(t *testing.T) {
	t.Parallel()
	boom := errors.New("boom")
	exps := []Experiment{
		synth("ok0", func(w io.Writer) error { fmt.Fprintln(w, "zero"); return nil }),
		synth("bad", func(w io.Writer) error { fmt.Fprintln(w, "partial"); return boom }),
		synth("ok2", func(w io.Writer) error { fmt.Fprintln(w, "two"); return nil }),
	}
	want := "==> synthetic ok0 (ok0)\nzero\n<== ok0 done in 0.000s\n\n" +
		"==> synthetic bad (bad)\npartial\n"
	for _, workers := range []int{1, 4} {
		var got bytes.Buffer
		rep, err := runSelected(&got, exps, RunOptions{Workers: workers})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
		if !strings.Contains(err.Error(), "bad:") {
			t.Fatalf("workers=%d: err %q does not name the failing experiment", workers, err)
		}
		if got.String() != want {
			t.Fatalf("workers=%d: failure bytes diverge from sequential\n got: %q\nwant: %q",
				workers, got.String(), want)
		}
		if len(rep.Timings) != 2 {
			t.Fatalf("workers=%d: %d timings after failure, want 2 (flushed prefix)", workers, len(rep.Timings))
		}
	}
}

// errWriter fails every write after the first n bytes-carrying calls.
type errWriter struct{ writes int }

func (w *errWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > 1 {
		return 0, errors.New("sink full")
	}
	return len(p), nil
}

func TestRunSelectedSurfacesWriterError(t *testing.T) {
	t.Parallel()
	exps := []Experiment{
		synth("a", func(w io.Writer) error { return nil }),
		synth("b", func(w io.Writer) error { return nil }),
	}
	_, err := runSelected(&errWriter{}, exps, RunOptions{Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "sink full") {
		t.Fatalf("writer error not surfaced: %v", err)
	}
}

// TestRunSelectedReportTimings drives the engine single-worker with a
// virtual clock each experiment advances, so per-experiment seconds and
// the wall time are exact.
func TestRunSelectedReportTimings(t *testing.T) {
	t.Parallel()
	clk := clock.NewVirtual(0)
	exps := []Experiment{
		synth("a", func(w io.Writer) error { clk.Advance(1.5); return nil }),
		synth("b", func(w io.Writer) error { clk.Advance(2.5); return nil }),
	}
	rep, err := runSelected(io.Discard, exps, RunOptions{Workers: 1, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	approx := func(a, b float64) bool { d := a - b; return d < 1e-9 && d > -1e-9 }
	if len(rep.Timings) != 2 || !approx(rep.Timings[0].Seconds, 1.5) || !approx(rep.Timings[1].Seconds, 2.5) {
		t.Fatalf("timings = %+v, want [1.5 2.5]", rep.Timings)
	}
	if !approx(rep.WallSeconds, 4) || !approx(rep.SumSeconds(), 4) {
		t.Fatalf("wall %g sum %g, want 4 and 4", rep.WallSeconds, rep.SumSeconds())
	}
	if !approx(rep.Speedup(), 1) {
		t.Fatalf("speedup = %g, want 1 for the single-worker run", rep.Speedup())
	}
}

// TestRunAllRecordsTelemetry checks the engine mirrors its report into the
// registry: per-experiment gauge series plus the aggregate gauges.
func TestRunAllRecordsTelemetry(t *testing.T) {
	t.Parallel()
	reg := telemetry.NewRegistry()
	if _, err := RunAll(io.Discard, RunOptions{Workers: 2, IDs: []string{"tab1", "tab2"}, Registry: reg}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`odinsim_experiment_seconds{experiment="tab1"}`,
		`odinsim_experiment_seconds{experiment="tab2"}`,
		"odinsim_wall_seconds",
		"odinsim_workers 2",
		"odinsim_speedup",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("telemetry exposition missing %q:\n%s", want, out)
		}
	}
}
