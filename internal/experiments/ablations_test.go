package experiments

import (
	"bytes"
	"testing"

	"odin/internal/core"
)

// The ablation tests use reduced sweeps — they verify trends and wiring,
// not the full grids the CLI prints.

func TestAblSearchKTrend(t *testing.T) {
	t.Parallel()
	res, err := AblSearchK(core.DefaultSystem(), []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	k1, k3 := res.Rows[0], res.Rows[1]
	// More search budget → more evaluations per decision.
	if k3.EvalsPerLayer <= k1.EvalsPerLayer {
		t.Errorf("K=3 evals %v not above K=1 %v", k3.EvalsPerLayer, k1.EvalsPerLayer)
	}
	// RB stays within a sane factor of the exhaustive controller.
	for _, row := range res.Rows {
		if row.EDPvsExhaustive < 0.5 || row.EDPvsExhaustive > 3 {
			t.Errorf("K=%d EDP vs EX = %v implausible", row.K, row.EDPvsExhaustive)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("no render output")
	}
}

func TestAblBufferTrend(t *testing.T) {
	t.Parallel()
	res, err := AblBuffer(core.DefaultSystem(), []int{10, 100})
	if err != nil {
		t.Fatal(err)
	}
	small, large := res.Rows[0], res.Rows[1]
	// Smaller buffers fill faster → at least as many updates.
	if small.PolicyUpdates < large.PolicyUpdates {
		t.Errorf("capacity 10 updated %d times, capacity 100 %d times",
			small.PolicyUpdates, large.PolicyUpdates)
	}
	// Storage scales with capacity.
	if small.StorageKB >= large.StorageKB {
		t.Error("storage did not grow with capacity")
	}
}

func TestAblEtaTrend(t *testing.T) {
	t.Parallel()
	res, err := AblEta(core.DefaultSystem(), []float64{0.0025, 0.02})
	if err != nil {
		t.Fatal(err)
	}
	tight, loose := res.Rows[0], res.Rows[1]
	// A tighter threshold can only reprogram at least as often and can only
	// hold accuracy at least as well.
	if tight.Reprograms < loose.Reprograms {
		t.Errorf("tight η reprogrammed %d, loose %d", tight.Reprograms, loose.Reprograms)
	}
	if tight.MinAcc < loose.MinAcc-1e-9 {
		t.Errorf("tight η min accuracy %v below loose %v", tight.MinAcc, loose.MinAcc)
	}
}

func TestAblRateCrossover(t *testing.T) {
	t.Parallel()
	res, err := AblRate(core.DefaultSystem(), []float64{1e-5, 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	lowRate, highRate := res.Rows[0], res.Rows[1]
	// Reprogramming dominates at low rates: Odin's advantage shrinks
	// monotonically as the inference stream densifies.
	if lowRate.EDPRatio <= highRate.EDPRatio {
		t.Errorf("EDP ratio should fall with rate: %v -> %v", lowRate.EDPRatio, highRate.EDPRatio)
	}
	// Odin never loses at either extreme.
	if highRate.EDPRatio < 1 {
		t.Errorf("16×16 beat Odin at high rate: %v", highRate.EDPRatio)
	}
}

func TestAblClusterTracksWidth(t *testing.T) {
	t.Parallel()
	res, err := AblCluster(core.DefaultSystem(), []int{4, 64})
	if err != nil {
		t.Fatal(err)
	}
	narrow, wide := res.Rows[0], res.Rows[1]
	// The optimal OU width follows the pruning granularity.
	if narrow.MeanOUWidth >= wide.MeanOUWidth {
		t.Errorf("optimal C did not grow with cluster width: %v vs %v",
			narrow.MeanOUWidth, wide.MeanOUWidth)
	}
}

func TestAblPolicyArchitectures(t *testing.T) {
	t.Parallel()
	res, err := AblPolicy(core.DefaultSystem(), [][]int{{}, {16}})
	if err != nil {
		t.Fatal(err)
	}
	linear, trunk := res.Rows[0], res.Rows[1]
	if linear.Name != "linear" || trunk.Name != "trunk-16" {
		t.Fatalf("unexpected names: %q %q", linear.Name, trunk.Name)
	}
	// The trunk adds parameters (and §V.E power).
	if trunk.Params <= linear.Params {
		t.Error("trunk policy should have more parameters")
	}
	if trunk.PowerMW <= 0 || linear.PowerMW <= 0 {
		t.Error("power estimates missing")
	}
	// Both learn something non-trivial on the held-out family.
	for _, row := range res.Rows {
		if row.Agreement < 0.05 {
			t.Errorf("%s agreement %v implausibly low", row.Name, row.Agreement)
		}
	}
}
