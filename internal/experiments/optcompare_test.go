package experiments

import (
	"testing"

	"odin/internal/core"
)

// TestOptCompareAcceptance pins the headline claim of the optimizer
// subsystem on the committed comparison: on every zoo workload the
// Bayesian strategy reaches within 5% of the exhaustive optimum's EDP
// while spending at most half of EX's candidate evaluations, and the
// multi-objective strategy's scalarization never leaves the exhaustive
// optimum (ratio exactly 1).
func TestOptCompareAcceptance(t *testing.T) {
	t.Parallel()
	res, err := OptCompare(core.DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("opt-compare produced no rows")
	}
	for _, row := range res.Rows {
		stats := map[string]OptStrategyStats{}
		for _, st := range row.Stats {
			stats[st.Strategy] = st
		}
		ex, bo, pareto := stats["ex"], stats["bo"], stats["pareto"]
		if 2*bo.EvalsPerDecision > ex.EvalsPerDecision {
			t.Errorf("%s: bo spends %.2f evals/decision, more than half of EX's %.2f",
				row.Workload, bo.EvalsPerDecision, ex.EvalsPerDecision)
		}
		if bo.EDPRatio > 1.05 {
			t.Errorf("%s: bo EDP ratio %.4f exceeds 1.05× the EX optimum",
				row.Workload, bo.EDPRatio)
		}
		if pareto.EDPRatio > 1 {
			t.Errorf("%s: pareto scalarization ratio %.6f leaves the EX optimum",
				row.Workload, pareto.EDPRatio)
		}
		if row.Feasible > 0 && pareto.MeanFrontSize < 1 {
			t.Errorf("%s: pareto mean front size %.2f below 1 with %d feasible decisions",
				row.Workload, pareto.MeanFrontSize, row.Feasible)
		}
	}
}
