package experiments

import (
	"fmt"
	"io"

	"odin/internal/core"
	"odin/internal/infer"
	"odin/internal/ou"
	"odin/internal/rng"
)

// NoiseRow is one read-noise level's measured impact.
type NoiseRow struct {
	Sigma      float64
	LogitError float64
	FlipRate   float64
}

// NoiseResult sweeps multiplicative read-noise σ on the crossbar-executed
// CNN — the thermal/shot-noise axis of the non-ideality taxonomy (paper
// §I cites it alongside IR-drop and drift; the analytic models fold it
// into the calibrated surrogate, this study measures it directly).
type NoiseResult struct {
	Sigmas []float64
	Rows   []NoiseRow
	Inputs int
}

// Noise runs the sweep on a fresh device (age t₀) so the noise axis is
// isolated from drift.
func Noise(sys core.System, sigmas []float64) (NoiseResult, error) {
	if len(sigmas) == 0 {
		sigmas = []float64{0, 0.01, 0.02, 0.05, 0.10}
	}
	const nInputs = 40
	device := sys.Device
	device.BitsPerCell = 6
	device.DriftSigma = 0 // isolate the noise axis
	net := infer.RandomNet(1, 16, 16, 4, "noise-net")
	engine, err := infer.NewEngine(net, device, 64)
	if err != nil {
		return NoiseResult{}, err
	}
	candidates := infer.RandomInputs(4*nInputs, 1, 16, 16, "noise-inputs")
	inputs := engine.HardestInputs(candidates, nInputs)

	res := NoiseResult{Sigmas: sigmas, Inputs: nInputs}
	for _, sigma := range sigmas {
		opts := infer.Options{
			OU: ou.Size{R: 16, C: 16}, SimTime: 0,
			NoiseSigma: sigma,
			Noise:      rng.NewFromString(fmt.Sprintf("noise-sweep/%g", sigma)),
		}
		res.Rows = append(res.Rows, NoiseRow{
			Sigma:      sigma,
			LogitError: engine.MeanLogitError(inputs, opts),
			FlipRate:   engine.FlipRate(inputs, opts),
		})
	}
	return res, nil
}

// Render prints the noise sweep.
func (r NoiseResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Read-noise sensitivity on a fresh device (16×16 OU, %d boundary inputs)\n", r.Inputs)
	fmt.Fprintf(w, "%-8s %14s %12s\n", "σ", "logit error", "flip rate")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8.2f %13.1f%% %11.1f%%\n", row.Sigma, row.LogitError*100, row.FlipRate*100)
	}
}

func runNoise(w io.Writer) error {
	res, err := Noise(core.DefaultSystem(), nil)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}
