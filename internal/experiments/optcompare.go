package experiments

import (
	"fmt"
	"io"
	"math"

	"odin/internal/core"
	"odin/internal/dnn"
	"odin/internal/opt"
	"odin/internal/ou"
	"odin/internal/par"
	"odin/internal/search"
)

// optCompareAgeExps are the drift ages the head-to-head comparison scores
// each layer decision at, as decades past programming: t₀·10⁰ (fresh),
// t₀·10⁴ (mid-life) and t₀·10⁶ (near the reprogramming regime). Together
// they cover the feasibility-region shrink Fig. 4 shows.
var optCompareAgeExps = []float64{0, 4, 6}

// OptStrategyStats aggregates one optimizer's line-6 behaviour over every
// (layer, age) decision of one workload.
type OptStrategyStats struct {
	Strategy string

	// EvalsPerDecision is the mean comparator budget spent per decision —
	// the head-to-head cost axis (EX pays the full grid, RB 1+4K, BO at
	// most half the grid).
	EvalsPerDecision float64

	// EvalsToOptimum is the mean candidate count until the returned best
	// was first scored, over decisions that found a feasible size: how
	// quickly the strategy reaches its final answer, not just when it
	// stops looking.
	EvalsToOptimum float64

	// EDPRatio is Σ best-EDP over feasible decisions divided by EX's sum —
	// the equal-budget quality axis (1.0 means the strategy matched the
	// exhaustive optimum everywhere).
	EDPRatio float64

	// MeanFrontSize is the mean non-dominated front cardinality per
	// feasible decision; zero for the scalar strategies.
	MeanFrontSize float64
}

// OptCompareRow is one workload's head-to-head table.
type OptCompareRow struct {
	Workload  string
	Dataset   string
	Decisions int // layers × ages
	Feasible  int // decisions where at least one OU size satisfied η
	Stats     []OptStrategyStats
}

// OptCompareResult is the cross-workload optimizer comparison.
type OptCompareResult struct {
	Ages []float64 // decision ages (s)
	Rows []OptCompareRow
}

// OptCompare runs every registered line-6 strategy on every layer decision
// of every zoo workload at three drift ages, from the same clamped 16×16
// start Algorithm 1 would seed a cold policy with. Workloads are simulated
// in parallel (each goroutine prepares its own workload copy and fills only
// rows[i]); strategies share nothing across decisions, so the table is
// byte-identical at any worker count.
func OptCompare(sys core.System) (OptCompareResult, error) {
	grid := sys.Grid()
	strategies := opt.All()
	t0 := sys.Acc.Device.T0
	res := OptCompareResult{}
	for _, exp := range optCompareAgeExps {
		res.Ages = append(res.Ages, t0*math.Pow(10, exp))
	}

	models := dnn.AllWorkloads()
	rows := make([]OptCompareRow, len(models))
	if err := par.ForEach(0, len(models), func(i int) error {
		model := models[i]
		wl, err := sys.Prepare(cloneOf(model.Name))
		if err != nil {
			return err
		}
		row := OptCompareRow{Workload: model.Name, Dataset: model.Dataset.Name}

		type tally struct {
			evals, toOpt, fronts int
			found                int
			edp                  float64
		}
		tallies := make([]tally, len(strategies))

		for _, age := range res.Ages {
			for j := 0; j < wl.Layers(); j++ {
				obj := core.LayerObjective(sys, wl, j, age)
				start := search.ClampFeasible(grid, obj, ou.Size{R: 16, C: 16})
				row.Decisions++
				feasible := false
				for si, strat := range strategies {
					var seen []ou.Size
					probed := obj
					probed.Probe = func(s ou.Size, _ bool, _ float64) {
						seen = append(seen, s)
					}
					r := strat.Optimize(grid, probed, start, 0)
					tallies[si].evals += r.Evaluations
					if !r.Found {
						continue
					}
					feasible = true
					tallies[si].found++
					tallies[si].edp += r.BestEDP
					tallies[si].fronts += len(r.Front)
					for k, s := range seen {
						if s == r.Best {
							tallies[si].toOpt += k + 1
							break
						}
					}
				}
				if feasible {
					row.Feasible++
				}
			}
		}

		var exEDP float64
		for si, strat := range strategies {
			if strat.Name() == (opt.Exhaustive{}).Name() {
				exEDP = tallies[si].edp
			}
		}
		for si, strat := range strategies {
			tl := tallies[si]
			st := OptStrategyStats{
				Strategy:         strat.Name(),
				EvalsPerDecision: float64(tl.evals) / float64(row.Decisions),
			}
			if tl.found > 0 {
				st.EvalsToOptimum = float64(tl.toOpt) / float64(tl.found)
				st.MeanFrontSize = float64(tl.fronts) / float64(tl.found)
			}
			if exEDP > 0 {
				st.EDPRatio = tl.edp / exEDP
			}
			row.Stats = append(row.Stats, st)
		}
		rows[i] = row
		return nil
	}); err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}

// Render prints one head-to-head block per workload: comparator cost,
// candidate-evaluations-to-optimum, equal-budget EDP quality against the
// exhaustive optimum, and the mean non-dominated front size.
func (r OptCompareResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Line-6 optimizer head-to-head: zoo workloads × device ages")
	for _, age := range r.Ages {
		fmt.Fprintf(w, "  %.3g s", age)
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "\n%s (%s): %d decisions, %d feasible\n",
			row.Workload, row.Dataset, row.Decisions, row.Feasible)
		fmt.Fprintf(w, "%8s %12s %12s %14s %8s\n",
			"strategy", "evals/dec", "evals→opt", "EDP vs EX", "front")
		for _, st := range row.Stats {
			front := fmt.Sprintf("%8s", "-")
			if st.MeanFrontSize > 0 {
				front = fmt.Sprintf("%8.2f", st.MeanFrontSize)
			}
			fmt.Fprintf(w, "%8s %12.2f %12.2f %14.4f %s\n",
				st.Strategy, st.EvalsPerDecision, st.EvalsToOptimum, st.EDPRatio, front)
		}
	}
}

func runOptCompare(w io.Writer) error {
	res, err := OptCompare(core.DefaultSystem())
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}
