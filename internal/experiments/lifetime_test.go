package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"odin/internal/core"
)

func TestLifetimeOrdering(t *testing.T) {
	t.Parallel()
	res, err := Lifetime(core.DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("expected 5 rows, got %d", len(res.Rows))
	}
	byName := map[string]LifetimeRow{}
	for _, row := range res.Rows {
		byName[row.Name] = row
	}
	odin := byName["Odin"]
	coarse := byName["16×16"]
	// The endurance story: Odin's sparse reprogramming buys orders of
	// magnitude more service life than the coarse homogeneous baseline.
	if !math.IsInf(odin.LifetimeYears, 1) && odin.LifetimeYears < 100*coarse.LifetimeYears {
		t.Errorf("Odin lifetime %v yr not ≫ 16×16's %v yr", odin.LifetimeYears, coarse.LifetimeYears)
	}
	// Wear fractions follow reprogram counts exactly.
	for name, row := range byName {
		if row.Reprograms > 0 && row.WearFraction <= 0 {
			t.Errorf("%s has reprograms but zero wear", name)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "lifetime") {
		t.Fatal("render output malformed")
	}
}

func TestNoCValidateTightBound(t *testing.T) {
	t.Parallel()
	res, err := NoCValidate(core.DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("expected 9 workloads, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Ratio < 1-1e-9 {
			t.Errorf("%s: simulation beat the analytic bound (%v)", row.Workload, row.Ratio)
		}
		if row.Ratio > 3 {
			t.Errorf("%s: analytic bound loose by %v×", row.Workload, row.Ratio)
		}
		if row.Flows <= 0 || row.EnergyJ <= 0 {
			t.Errorf("%s: degenerate traffic", row.Workload)
		}
	}
}

func TestMobileNetExtension(t *testing.T) {
	t.Parallel()
	res, err := MobileNet(core.DefaultSystem())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("expected 5 rows, got %d", len(res.Rows))
	}
	odin := res.OdinRow()
	if odin.Name != "Odin" {
		t.Fatalf("last row %s, want Odin", odin.Name)
	}
	// The layer-wise adaptivity claim generalises to the unseen
	// depthwise-separable class: Odin still wins EDP against every baseline.
	for _, row := range res.Rows[:len(res.Rows)-1] {
		if odin.EDP >= row.EDP {
			t.Errorf("Odin EDP %v not below %s's %v on MobileNetV2", odin.EDP, row.Name, row.EDP)
		}
	}
	if odin.Reprograms > 4 {
		t.Errorf("Odin reprogrammed %d times", odin.Reprograms)
	}
	if odin.MinAcc < 0.92 {
		t.Errorf("Odin accuracy %v dropped on MobileNetV2", odin.MinAcc)
	}
}

func TestRowSkipValidation(t *testing.T) {
	t.Parallel()
	res, err := RowSkip(core.DefaultSystem(), []int{8, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if diff := row.Analytic - row.Measured; diff > 0.1 || diff < -0.1 {
			t.Errorf("width %d: analytic %v vs measured %v diverge",
				row.Width, row.Analytic, row.Measured)
		}
	}
	// Both curves decay with width.
	if !(res.Rows[0].Measured >= res.Rows[2].Measured) {
		t.Error("measured skip should not grow with width")
	}
}

func TestIndexesStorageArgument(t *testing.T) {
	t.Parallel()
	res, err := Indexes(core.DefaultSystem(), []int{8, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	narrow, wide := res.Rows[0], res.Rows[1]
	if narrow.StorageKB <= wide.StorageKB {
		t.Errorf("narrow-OU tables (%v KB) should exceed wide (%v KB)",
			narrow.StorageKB, wide.StorageKB)
	}
	// The §II argument: static multi-width support costs orders of
	// magnitude more storage than Odin's policy + buffer.
	if res.AllWidthsKB < 100*res.OdinKB {
		t.Errorf("storage argument too weak: %v KB static vs %v KB Odin",
			res.AllWidthsKB, res.OdinKB)
	}
	if res.OdinKB <= 0 {
		t.Fatal("Odin storage missing")
	}
}
