package experiments

import (
	"fmt"
	"io"

	"odin/internal/core"
)

// ConfidenceRow is one search-routing variant's outcome.
type ConfidenceRow struct {
	Name          string
	EvalsPerLayer float64
	EDP           float64
	Reprograms    int
}

// ConfidenceResult compares three search-routing strategies for line 6 of
// Algorithm 1: always-RB (the paper), always-EX (§V.B's costly
// alternative), and the confidence-gated hybrid (EX only when the policy
// is unsure — following the uncertainty-aware online learning line the
// paper builds on).
type ConfidenceResult struct {
	Model string
	Rows  []ConfidenceRow
}

// Confidence runs the comparison on VGG11.
func Confidence(sys core.System, thresholds []float64) (ConfidenceResult, error) {
	if len(thresholds) == 0 {
		thresholds = []float64{0.3, 0.5, 0.8}
	}
	cfg := ablationHorizon()
	res := ConfidenceResult{Model: "VGG11"}
	layers := 11.0

	run := func(name string, opts core.ControllerOptions) error {
		sum, _, err := odinSummaryFor(sys, res.Model, opts, cfg)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, ConfidenceRow{
			Name:          name,
			EvalsPerLayer: float64(sum.SearchEvaluations) / (float64(cfg.Epochs) * layers),
			EDP:           sum.TotalEDP(),
			Reprograms:    sum.Reprograms,
		})
		return nil
	}

	if err := run("RB (paper)", core.DefaultControllerOptions()); err != nil {
		return res, err
	}
	for _, th := range thresholds {
		opts := core.DefaultControllerOptions()
		opts.ConfidenceEX = true
		opts.ConfidenceThreshold = th
		if err := run(fmt.Sprintf("hybrid ≥%.1f", th), opts); err != nil {
			return res, err
		}
	}
	ex := core.DefaultControllerOptions()
	ex.Exhaustive = true
	if err := run("EX always", ex); err != nil {
		return res, err
	}
	return res, nil
}

// Render prints the routing comparison.
func (r ConfidenceResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Extension: confidence-gated search routing (%s)\n", r.Model)
	fmt.Fprintf(w, "%-14s %16s %14s %12s\n", "Variant", "evals/decision", "EDP", "reprograms")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %16.1f %14.3e %12d\n", row.Name, row.EvalsPerLayer, row.EDP, row.Reprograms)
	}
}

func runConfidence(w io.Writer) error {
	res, err := Confidence(core.DefaultSystem(), nil)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}
