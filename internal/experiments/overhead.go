package experiments

import (
	"fmt"
	"io"

	"odin/internal/core"
	"odin/internal/dnn"
	"odin/internal/policy"
	"odin/internal/search"
)

// OverheadResult reproduces §V.E: the hardware and runtime cost of
// layer-wise OU control and online learning.
type OverheadResult struct {
	OUControllerAreaMM2 float64 // paper: 0.005 mm²
	OUControllerSharePc float64 // paper: 1.8 % of the tile
	LearningAreaMM2     float64 // paper: 0.076 mm²
	LearningAreaSharePc float64 // paper: 0.2 % of the 36-PE system
	PredictPowerMW      float64 // paper: 0.14 mW
	PredictLatencyPc    float64 // paper: 0.9 % penalty vs static 16×16
	UpdateEnergyUJ      float64 // paper: 0.22 µJ per update (100 epochs)
	BufferExamples      int     // paper: 50
	BufferKB            float64 // paper: 0.35 KB
	PolicyParams        int
	EXOverRBRatio       float64 // paper: ≈3× comparator overhead
}

// Overhead derives the §V.E numbers from the architecture and policy models.
func Overhead(sys core.System) (OverheadResult, error) {
	pol := policy.New(policy.Config{Grid: sys.Grid(), Seed: 1})
	opts := core.DefaultControllerOptions()
	o := sys.Arch.OverheadModel(pol.NumParams(), opts.BufferSize, opts.UpdateEpochs)

	wl, err := sys.Prepare(dnn.NewVGG11())
	if err != nil {
		return OverheadResult{}, err
	}
	grid := sys.Grid()
	obj := core.LayerObjective(sys, wl, 4, 1)
	rb := search.ResourceBounded(grid, obj, grid.SizeAt(2, 2), opts.SearchK)
	ex := search.Exhaustive(grid, obj)

	return OverheadResult{
		OUControllerAreaMM2: o.OUControllerArea,
		OUControllerSharePc: o.OUControllerShare * 100,
		LearningAreaMM2:     o.LearningArea,
		LearningAreaSharePc: o.LearningAreaShare * 100,
		PredictPowerMW:      o.PredictPower * 1e3,
		PredictLatencyPc:    o.PredictLatencyPct,
		UpdateEnergyUJ:      o.UpdateEnergy * 1e6,
		BufferExamples:      o.TrainingBufferSize,
		BufferKB:            o.TrainingBufferKB,
		PolicyParams:        pol.NumParams(),
		EXOverRBRatio:       float64(ex.Evaluations) / float64(rb.Evaluations),
	}, nil
}

// Render prints the overhead summary in §V.E's terms.
func (r OverheadResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Sec. V-E: overhead analysis\n")
	fmt.Fprintf(w, "OU/ADC controller area:        %.4f mm² (%.1f%% of tile)\n",
		r.OUControllerAreaMM2, r.OUControllerSharePc)
	fmt.Fprintf(w, "Online-learning hardware area: %.4f mm² (%.2f%% of 36-PE system)\n",
		r.LearningAreaMM2, r.LearningAreaSharePc)
	fmt.Fprintf(w, "OU size prediction power:      %.2f mW (policy: %d params)\n",
		r.PredictPowerMW, r.PolicyParams)
	fmt.Fprintf(w, "Prediction latency penalty:    %.1f%% vs static 16×16\n", r.PredictLatencyPc)
	fmt.Fprintf(w, "Policy update energy:          %.2f µJ per update (100 epochs, %d examples, %.2f KB buffer)\n",
		r.UpdateEnergyUJ, r.BufferExamples, r.BufferKB)
	fmt.Fprintf(w, "EX search comparator overhead: %.1f× over RB\n", r.EXOverRBRatio)
}

func runOverhead(w io.Writer) error {
	res, err := Overhead(core.DefaultSystem())
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}
