package pim

import (
	"fmt"
	"testing"

	"odin/internal/check"
	"odin/internal/dnn"
)

// adcCase pairs two OU heights so ADC precision properties can compare
// ordered inputs on one platform.
type adcCase struct{ R1, R2 int }

func genADCCase() check.Gen[adcCase] {
	r := check.IntRange(1, 4096)
	return check.Gen[adcCase]{
		Generate: func(t *check.T) adcCase {
			return adcCase{R1: r.Generate(t), R2: r.Generate(t)}
		},
		Shrink: func(c adcCase) []adcCase {
			var out []adcCase
			for _, v := range check.ShrinkInt(c.R1, 1) {
				out = append(out, adcCase{R1: v, R2: c.R2})
			}
			for _, v := range check.ShrinkInt(c.R2, 1) {
				out = append(out, adcCase{R1: c.R1, R2: v})
			}
			return out
		},
	}
}

// ceilLog2 is an integer oracle for ceil(log2(r)): the smallest b with
// 2^b >= r. Independent of the float math ADCBits uses.
func ceilLog2(r int) int {
	b := 0
	for 1<<b < r {
		b++
	}
	return b
}

// TestPropADCBitsLogCostMonotoneClamped pins the ADC precision law: the
// configured bit count equals ceil(log2(R)) clamped to the reconfigurable
// [min,max] range, and is therefore monotone non-decreasing in R. This is
// the `make check` mutation-smoke target — breaking the monotone direction
// must produce a shrunk counterexample.
func TestPropADCBitsLogCostMonotoneClamped(t *testing.T) {
	t.Parallel()
	arch := DefaultArch()
	check.Run(t, genADCCase(), func(c adcCase) error {
		for _, r := range []int{c.R1, c.R2} {
			bits := arch.ADCBits(r)
			if bits < arch.ADCMinBits || bits > arch.ADCMaxBits {
				return fmt.Errorf("ADCBits(%d) = %d outside [%d,%d]", r, bits, arch.ADCMinBits, arch.ADCMaxBits)
			}
			want := ceilLog2(r)
			if want < arch.ADCMinBits {
				want = arch.ADCMinBits
			}
			if want > arch.ADCMaxBits {
				want = arch.ADCMaxBits
			}
			if bits != want {
				return fmt.Errorf("ADCBits(%d) = %d, want clamp(ceil(log2)) = %d", r, bits, want)
			}
		}
		lo, hi := c.R1, c.R2
		if lo > hi {
			lo, hi = hi, lo
		}
		if bl, bh := arch.ADCBits(lo), arch.ADCBits(hi); bl > bh {
			return fmt.Errorf("ADC precision not monotone: ADCBits(%d)=%d > ADCBits(%d)=%d", lo, bl, hi, bh)
		}
		return nil
	})
}

// layerCase is a generated (valid) conv/FC layer for mapping properties.
type layerCase struct {
	FC        bool
	Kernel    int
	In, Out   int
	Spatial   int
	Stride    int
	Depthwise bool
	Sparsity  float64
}

func (lc layerCase) layer() dnn.Layer {
	l := dnn.Layer{
		Name:           "gen",
		Type:           dnn.Conv,
		KernelH:        lc.Kernel,
		KernelW:        lc.Kernel,
		InChannels:     lc.In,
		OutChannels:    lc.Out,
		InH:            lc.Spatial,
		InW:            lc.Spatial,
		Stride:         lc.Stride,
		WeightSparsity: lc.Sparsity,
	}
	if lc.FC {
		l.Type = dnn.FC
		l.KernelH, l.KernelW = 1, 1
		l.InH, l.InW = 1, 1
		l.Stride = 1
	} else if lc.Depthwise {
		l.OutChannels = l.InChannels
		l.Groups = l.InChannels
	}
	return l
}

func genLayerCase() check.Gen[layerCase] {
	return check.Gen[layerCase]{
		Generate: func(t *check.T) layerCase {
			return layerCase{
				FC:        t.Rng.Bernoulli(0.25),
				Kernel:    1 + t.Rng.Intn(5),
				In:        1 + t.Rng.Intn(96),
				Out:       1 + t.Rng.Intn(96),
				Spatial:   2 + t.Rng.Intn(31),
				Stride:    1 + t.Rng.Intn(2),
				Depthwise: t.Rng.Bernoulli(0.2),
				Sparsity:  t.Rng.Float64() * 0.9,
			}
		},
		Shrink: func(lc layerCase) []layerCase {
			var out []layerCase
			mutInt := func(v, toward int, set func(*layerCase, int)) {
				for _, c := range check.ShrinkInt(v, toward) {
					m := lc
					set(&m, c)
					out = append(out, m)
				}
			}
			mutInt(lc.Kernel, 1, func(m *layerCase, v int) { m.Kernel = v })
			mutInt(lc.In, 1, func(m *layerCase, v int) { m.In = v })
			mutInt(lc.Out, 1, func(m *layerCase, v int) { m.Out = v })
			mutInt(lc.Spatial, 2, func(m *layerCase, v int) { m.Spatial = v })
			if lc.Depthwise {
				m := lc
				m.Depthwise = false
				out = append(out, m)
			}
			if lc.Sparsity > 0 {
				m := lc
				m.Sparsity = 0
				out = append(out, m)
			}
			return out
		},
	}
}

// TestPropMapLayerInvariants pins the structural contract of the
// layer→crossbar mapping for any valid layer: occupancy fits the crossbar,
// tile bookkeeping is consistent, the placement covers the im2col
// requirement, and cell accounting never exceeds the total.
func TestPropMapLayerInvariants(t *testing.T) {
	t.Parallel()
	arch := DefaultArch()
	check.Run(t, genLayerCase(), func(lc layerCase) error {
		l := lc.layer()
		if err := l.Validate(); err != nil {
			return nil // generator corner the dnn layer model rejects: vacuous
		}
		m := arch.MapLayer(l)
		if m.Xbars < 1 || m.RowTiles < 1 || m.ColTiles < 1 {
			return fmt.Errorf("non-positive tiling %+v", m)
		}
		if m.Xbars != m.RowTiles*m.ColTiles {
			return fmt.Errorf("Xbars %d != RowTiles %d · ColTiles %d", m.Xbars, m.RowTiles, m.ColTiles)
		}
		if m.RowsUsed < 1 || m.RowsUsed > arch.CrossbarSize {
			return fmt.Errorf("RowsUsed %d outside [1,%d]", m.RowsUsed, arch.CrossbarSize)
		}
		if m.ColsUsed < 1 || m.ColsUsed > arch.CrossbarSize {
			return fmt.Errorf("ColsUsed %d outside [1,%d]", m.ColsUsed, arch.CrossbarSize)
		}
		if l.GroupCount() == 1 {
			if m.RowsUsed*m.RowTiles < m.RowsRequired {
				return fmt.Errorf("row placement %d·%d covers less than required %d",
					m.RowsUsed, m.RowTiles, m.RowsRequired)
			}
			if m.ColsUsed*m.ColTiles < m.ColsRequired {
				return fmt.Errorf("column placement %d·%d covers less than required %d",
					m.ColsUsed, m.ColTiles, m.ColsRequired)
			}
		}
		if m.CellsNonZero < 0 || m.CellsNonZero > m.CellsTotal {
			return fmt.Errorf("non-zero cells %d outside [0, total %d]", m.CellsNonZero, m.CellsTotal)
		}
		if want := l.Weights() * arch.CellsPerWeight(); m.CellsTotal != want {
			return fmt.Errorf("CellsTotal %d != weights·cellsPerWeight %d", m.CellsTotal, want)
		}
		return nil
	})
}

// TestPropPeripheralEnergyMonotoneInCycles pins that the non-Eq.2 energy is
// positive and non-decreasing in the OU cycle count (buffer traffic grows
// with cycles; DAC/eDRAM terms are cycle-independent).
func TestPropPeripheralEnergyMonotoneInCycles(t *testing.T) {
	t.Parallel()
	arch := DefaultArch()
	type cyc struct {
		LC     layerCase
		C1, C2 int
	}
	g := check.Gen[cyc]{
		Generate: func(t *check.T) cyc {
			return cyc{LC: genLayerCase().Generate(t), C1: 1 + t.Rng.Intn(4096), C2: 1 + t.Rng.Intn(4096)}
		},
		Shrink: func(c cyc) []cyc {
			var out []cyc
			for _, v := range check.ShrinkInt(c.C1, 1) {
				out = append(out, cyc{LC: c.LC, C1: v, C2: c.C2})
			}
			for _, v := range check.ShrinkInt(c.C2, 1) {
				out = append(out, cyc{LC: c.LC, C1: c.C1, C2: v})
			}
			return out
		},
	}
	check.Run(t, g, func(c cyc) error {
		l := c.LC.layer()
		if err := l.Validate(); err != nil {
			return nil
		}
		m := arch.MapLayer(l)
		lo, hi := c.C1, c.C2
		if lo > hi {
			lo, hi = hi, lo
		}
		el, eh := arch.PeripheralEnergy(l, m, lo), arch.PeripheralEnergy(l, m, hi)
		if !(el > 0) {
			return fmt.Errorf("peripheral energy %g not positive at %d cycles", el, lo)
		}
		if el > eh*(1+1e-12) {
			return fmt.Errorf("peripheral energy dropped with cycles: %g J at %d vs %g J at %d", el, lo, eh, hi)
		}
		return nil
	})
}
