package pim

import "fmt"

// Component is one row of the Table I tile inventory.
type Component struct {
	Name string
	Spec string
	Area float64 // mm² at 32 nm
}

// TileComponents reproduces the paper's Table I inventory for this
// configuration. Areas are the paper's synthesised 32 nm values, scaled for
// structural parameters that differ from the default platform (crossbar
// count/size, ADC count).
func (a ArchConfig) TileComponents() []Component {
	def := DefaultArch()
	xbarScale := float64(a.CrossbarsPerTile) / float64(def.CrossbarsPerTile) *
		float64(a.CrossbarSize*a.CrossbarSize) / float64(def.CrossbarSize*def.CrossbarSize)
	adcScale := float64(a.ADCsPerTile) / float64(def.ADCsPerTile)
	return []Component{
		{"eDRAM buffer", "size:64KB", 0.083},
		{"eDRAM bus", "buswidth:384", 0.09},
		{"Router", "flit:32, port 8", 0.0375},
		{"Sigmoid, S+A, Maxpool", "number:2,96,1", 0.0038},
		{"OR, IR", "size:3KB, 2KB", 0.0282},
		{"OU Control", "number:1", 0.0048},
		{"ADC (with control)", fmt.Sprintf("number:%d; reconfigurable precision %d to %d bits",
			a.ADCsPerTile, a.ADCMinBits, a.ADCMaxBits), 0.03 * adcScale},
		{"DAC, S+H", fmt.Sprintf("number:%d×%d", a.ADCsPerTile, a.CrossbarSize), 0.0025 * adcScale},
		{"Memristor array", fmt.Sprintf("number:%d, size:%d×%d, bits/cell:%d, OU size: varying",
			a.CrossbarsPerTile, a.CrossbarSize, a.CrossbarSize, a.BitsPerCell), 0.0024 * xbarScale},
	}
}

// TileArea returns the total tile area in mm² (paper: 0.28 mm²).
func (a ArchConfig) TileArea() float64 {
	var total float64
	for _, c := range a.TileComponents() {
		total += c.Area
	}
	return total
}

// SystemArea returns the full-platform area in mm².
func (a ArchConfig) SystemArea() float64 {
	return a.TileArea() * float64(a.TilesPerPE*a.PEs)
}

// Overheads quantifies the cost of Odin's added hardware (§V.E): the OU/ADC
// controllers that steer layer-wise OU sizes, and the online-learning engine
// (policy inference + update on the digital PIM core).
type Overheads struct {
	OUControllerArea   float64 // mm² per tile (registers, mux, comparators)
	OUControllerShare  float64 // fraction of the tile area
	PredictPower       float64 // W consumed by OU size prediction
	PredictLatencyPct  float64 // latency penalty vs static 16×16 inference (%)
	UpdateEnergy       float64 // J per policy update (100 epochs on the buffer)
	LearningArea       float64 // mm² for the whole online-learning engine
	LearningAreaShare  float64 // fraction of the system area
	TrainingBufferSize int     // stored examples per update (paper: 50)
	TrainingBufferKB   float64 // buffer footprint in KB (paper: 0.35 KB)
}

// OverheadModel derives the §V.E overheads from the architecture and the
// policy's parameter count: prediction energy is MACs × a 32 nm
// energy-per-MAC, update energy is backprop MACs × epochs on the digital
// PIM core, and controller/learning areas are the synthesised constants.
func (a ArchConfig) OverheadModel(policyParams, bufferExamples, epochs int) Overheads {
	const (
		macEnergy      = 0.9e-12 // J per 8-bit MAC at 32 nm (digital core)
		trainMACFactor = 3.0     // backprop ≈ 3× forward MACs
		bytesPerSample = 7       // 4 feature bytes + 2 target bytes + tag
		// decisionPeriod is the reference interval between OU-size
		// predictions (one per layer per inference; ≈ a layer's 16×16
		// inference latency). Prediction power = energy-per-call amortised
		// over it.
		decisionPeriod = 2e-6 // s
	)
	o := Overheads{
		OUControllerArea:   0.005,
		PredictLatencyPct:  0.9,
		LearningArea:       0.076,
		TrainingBufferSize: bufferExamples,
		TrainingBufferKB:   float64(bufferExamples*bytesPerSample) / 1024,
	}
	o.OUControllerShare = o.OUControllerArea / a.TileArea()
	o.LearningAreaShare = o.LearningArea / a.SystemArea()
	// Prediction: one forward pass per layer decision; the tiny MLP's MAC
	// energy is spent once per decision period.
	predictEnergyPerCall := float64(policyParams) * macEnergy
	o.PredictPower = predictEnergyPerCall / decisionPeriod
	// Policy update: full-batch backprop over the buffer for `epochs` epochs.
	o.UpdateEnergy = float64(policyParams) * trainMACFactor *
		float64(bufferExamples) * float64(epochs) * macEnergy
	return o
}
