package pim

import (
	"math"
	"testing"
)

func TestBitSlicingForPlatform(t *testing.T) {
	t.Parallel()
	a := DefaultArch()
	b := a.BitSlicingFor(16)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.WeightSlices() != 4 { // 8-bit weights / 2 bits per cell
		t.Fatalf("weight slices = %d, want 4", b.WeightSlices())
	}
	if b.InputSlices() != 8 {
		t.Fatalf("input slices = %d, want 8", b.InputSlices())
	}
	if b.PartialProducts() != 32 {
		t.Fatalf("partial products = %d, want 32", b.PartialProducts())
	}
	if b.ShiftAddsPerOutput() != 31 {
		t.Fatalf("shift-adds = %d, want 31", b.ShiftAddsPerOutput())
	}
	if b.ADCBits != 4 { // log2(16)
		t.Fatalf("ADC bits = %d, want 4", b.ADCBits)
	}
}

func TestBitSlicingValidation(t *testing.T) {
	t.Parallel()
	bad := []BitSlicing{
		{WeightBits: 0, BitsPerCell: 1, InputBits: 1, ADCBits: 1},
		{WeightBits: 2, BitsPerCell: 4, InputBits: 1, ADCBits: 1},
		{WeightBits: 8, BitsPerCell: 2, InputBits: 0, ADCBits: 1},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad plan %d accepted: %+v", i, b)
		}
	}
}

func TestAccumulatorBits(t *testing.T) {
	t.Parallel()
	b := DefaultArch().BitSlicingFor(16)
	// ADC 4 bits + (4−1)·2 shift + (8−1) input shift = 17.
	if got := b.AccumulatorBits(); got != 17 {
		t.Fatalf("accumulator bits = %d, want 17", got)
	}
}

func TestRecombinationEnergyScales(t *testing.T) {
	t.Parallel()
	b := DefaultArch().BitSlicingFor(16)
	one := b.RecombinationEnergy(1)
	hundred := b.RecombinationEnergy(100)
	if math.Abs(hundred-100*one) > 1e-21 {
		t.Fatal("recombination energy not linear in outputs")
	}
	if one <= 0 {
		t.Fatal("recombination energy must be positive")
	}
}

func TestClippedRows(t *testing.T) {
	t.Parallel()
	b := DefaultArch().BitSlicingFor(16) // 4-bit ADC covers 16 rows
	if b.ClippedRows(16) != 0 {
		t.Fatal("16 rows should fit a 4-bit ADC")
	}
	if got := b.ClippedRows(20); got != 4 {
		t.Fatalf("clipped rows = %d, want 4", got)
	}
	// The reconfigurable design keeps every grid height un-clipped up to
	// the 6-bit ceiling; 128 rows exceed it by 64.
	b128 := DefaultArch().BitSlicingFor(128)
	if got := b128.ClippedRows(128); got != 64 {
		t.Fatalf("128-row clipping = %d, want 64 (6-bit ADC ceiling)", got)
	}
}

func TestQuantizationSNR(t *testing.T) {
	t.Parallel()
	b := DefaultArch().BitSlicingFor(64) // 6 bits
	if math.Abs(b.QuantizationSNR()-36.12) > 1e-9 {
		t.Fatalf("SNR = %v dB, want 36.12", b.QuantizationSNR())
	}
}

func TestSlicedMVMEnergyComposition(t *testing.T) {
	t.Parallel()
	b := DefaultArch().BitSlicingFor(16)
	const perSample = 1e-12
	got := b.SlicedMVMEnergy(perSample)
	want := 32*perSample + 31*b.ShiftAddEnergy
	if math.Abs(got-want) > 1e-21 {
		t.Fatalf("sliced energy = %v, want %v", got, want)
	}
}

func TestEffectiveOutputBits(t *testing.T) {
	t.Parallel()
	b := DefaultArch().BitSlicingFor(16)
	// Full precision: 8+8+log2(16) = 20; accumulator caps it at 17.
	if got := b.EffectiveOutputBits(16); got != 17 {
		t.Fatalf("effective bits = %d, want 17", got)
	}
	// Few rows: full precision fits.
	if got := b.EffectiveOutputBits(1); got != 16 {
		t.Fatalf("single-row effective bits = %d, want 16", got)
	}
}
