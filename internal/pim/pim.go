// Package pim models the ReRAM processing-in-memory architecture of the
// paper's evaluation platform (§IV, Table I): 36 processing elements on a
// mesh NoC, 4 tiles per PE, 96 crossbars of 128×128 cells per tile, with
// reconfigurable 3–6 bit ADCs, eDRAM activation buffers, and the OU / online
// learning controllers whose overheads §V.E quantifies.
//
// It provides the layer→crossbar mapping (producing the Xbar_j, rows/cols
// occupancy figures the Eq. 1/2 models need), the Table I component
// inventory (areas), and the §V.E overhead model. Energy/latency unit
// constants here play the role NeuroSim plays for the authors.
package pim

import (
	"fmt"
	"math"

	"odin/internal/dnn"
	"odin/internal/ou"
)

// ArchConfig describes the PIM platform.
type ArchConfig struct {
	PEs              int     // processing elements (paper: 36, 6×6 mesh)
	TilesPerPE       int     // paper: 4
	CrossbarsPerTile int     // paper: 96
	CrossbarSize     int     // paper: 128
	BitsPerCell      int     // paper: 2
	WeightBits       int     // quantised weight precision (8)
	InputBits        int     // DAC-streamed input precision (8)
	ClockHz          float64 // paper: 1.2 GHz
	ADCsPerTile      int     // paper: 96
	ADCMinBits       int     // paper: 3
	ADCMaxBits       int     // paper: 6

	// Peripheral energy constants (joules) standing in for NeuroSim output.
	EDRAMAccessEnergy float64 // per 32-bit activation fetch
	DACEnergyPerBit   float64 // per input bit streamed
	BufferEnergy      float64 // OR/IR access per OU cycle
}

// DefaultArch returns the paper's Table I platform.
func DefaultArch() ArchConfig {
	return ArchConfig{
		PEs:              36,
		TilesPerPE:       4,
		CrossbarsPerTile: 96,
		CrossbarSize:     128,
		BitsPerCell:      2,
		WeightBits:       8,
		InputBits:        8,
		ClockHz:          1.2e9,
		ADCsPerTile:      96,
		ADCMinBits:       3,
		ADCMaxBits:       6,

		EDRAMAccessEnergy: 1.2e-13, // 0.12 pJ / access (64 KB eDRAM @32 nm)
		DACEnergyPerBit:   2.0e-15, // 2 fJ per streamed input bit
		BufferEnergy:      5.0e-14, // OR/IR register file access
	}
}

// Validate reports configuration errors.
func (a ArchConfig) Validate() error {
	switch {
	case a.PEs < 1 || a.TilesPerPE < 1 || a.CrossbarsPerTile < 1:
		return fmt.Errorf("pim: non-positive structural counts (%d PEs, %d tiles, %d xbars)",
			a.PEs, a.TilesPerPE, a.CrossbarsPerTile)
	case a.CrossbarSize < 4:
		return fmt.Errorf("pim: crossbar size %d below minimum OU dimension", a.CrossbarSize)
	case a.BitsPerCell < 1 || a.WeightBits < a.BitsPerCell:
		return fmt.Errorf("pim: weight bits %d / cell bits %d inconsistent", a.WeightBits, a.BitsPerCell)
	case a.ClockHz <= 0:
		return fmt.Errorf("pim: non-positive clock %v", a.ClockHz)
	case a.ADCMinBits < 1 || a.ADCMaxBits < a.ADCMinBits:
		return fmt.Errorf("pim: ADC precision range [%d,%d] invalid", a.ADCMinBits, a.ADCMaxBits)
	}
	return nil
}

// CellsPerWeight returns how many ReRAM cells store one weight.
func (a ArchConfig) CellsPerWeight() int {
	return (a.WeightBits + a.BitsPerCell - 1) / a.BitsPerCell
}

// TotalCrossbars returns the platform's crossbar count.
func (a ArchConfig) TotalCrossbars() int { return a.PEs * a.TilesPerPE * a.CrossbarsPerTile }

// ADCBits returns the configured ADC precision for an OU height R: the
// paper sets precision ∝ log2(R), clamped to the reconfigurable range.
func (a ArchConfig) ADCBits(r int) int {
	bits := int(math.Ceil(math.Log2(float64(r))))
	if bits < a.ADCMinBits {
		bits = a.ADCMinBits
	}
	if bits > a.ADCMaxBits {
		bits = a.ADCMaxBits
	}
	return bits
}

// CostModel returns the ou.CostModel for this platform: one clock cycle per
// column-bit of ADC sensing, a per-cell-bit conversion energy in the tens
// of femtojoules (ISAAC-class, NeuroSim-calibrated scale), and a few clock
// cycles plus register/control energy of fixed overhead per OU cycle.
func (a ArchConfig) CostModel() ou.CostModel {
	return ou.CostModel{
		LatencyUnit:  1.0 / a.ClockHz,
		EnergyUnit:   2e-14,
		CycleLatency: 1.0 / a.ClockHz,
		CycleEnergy:  5e-13,
	}
}

// Grid returns the discrete OU search space for this platform's crossbars.
func (a ArchConfig) Grid() ou.Grid { return ou.DefaultGrid(a.CrossbarSize) }

// LayerMapping is the placement of one neural layer onto crossbars.
type LayerMapping struct {
	RowsRequired int // im2col rows (kernel² × in-channels)
	ColsRequired int // out-channels × cells-per-weight
	RowTiles     int // crossbars along the row dimension
	ColTiles     int // crossbars along the column dimension
	Xbars        int // RowTiles × ColTiles (Xbar_j in Eq. 2)
	RowsUsed     int // occupied rows per crossbar (balanced split)
	ColsUsed     int // occupied columns per crossbar
	CellsTotal   int // programmed cells across all crossbars
	CellsNonZero int // cells holding non-zero weights (reprogramming cost basis)
}

// MapLayer places a layer onto this platform's crossbars using a balanced
// im2col tiling. Grouped convolutions place each channel group as an
// independent block; several groups pack into one crossbar when their
// blocks are small (the depthwise case — 9-row blocks would otherwise
// strand 93 % of every array).
func (a ArchConfig) MapLayer(l dnn.Layer) LayerMapping {
	groups := l.GroupCount()
	rows := l.RowsRequired() // per group
	cols := (l.OutChannels / groups) * a.CellsPerWeight()

	if groups == 1 {
		rowTiles := ceilDiv(rows, a.CrossbarSize)
		colTiles := ceilDiv(cols, a.CrossbarSize)
		m := LayerMapping{
			RowsRequired: rows,
			ColsRequired: cols,
			RowTiles:     rowTiles,
			ColTiles:     colTiles,
			Xbars:        rowTiles * colTiles,
			RowsUsed:     ceilDiv(rows, rowTiles),
			ColsUsed:     ceilDiv(cols, colTiles),
		}
		m.CellsTotal = rows * cols
		m.CellsNonZero = int(math.Round(float64(m.CellsTotal) * (1 - l.WeightSparsity)))
		return m
	}

	// Grouped path: groups are placed block-diagonally. Pack as many groups
	// per crossbar as both dimensions allow (at least one).
	perXbarRows := a.CrossbarSize / rows
	perXbarCols := a.CrossbarSize / cols
	groupsPerXbar := perXbarRows
	if perXbarCols < groupsPerXbar {
		groupsPerXbar = perXbarCols
	}
	if groupsPerXbar < 1 {
		groupsPerXbar = 1
	}
	xbars := ceilDiv(groups, groupsPerXbar)
	packed := ceilDiv(groups, xbars) // balanced groups per crossbar
	m := LayerMapping{
		RowsRequired: rows * groups,
		ColsRequired: cols * groups,
		RowTiles:     xbars,
		ColTiles:     1,
		Xbars:        xbars,
		RowsUsed:     minInt(rows*packed, a.CrossbarSize),
		ColsUsed:     minInt(cols*packed, a.CrossbarSize),
	}
	m.CellsTotal = rows * cols * groups
	m.CellsNonZero = int(math.Round(float64(m.CellsTotal) * (1 - l.WeightSparsity)))
	return m
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Work converts a mapping plus the layer's sparsity profile into the OU
// cycle model's workload description.
func (m LayerMapping) Work(profile ou.SparsityProfile) ou.LayerWork {
	return ou.LayerWork{
		Xbars:    m.Xbars,
		RowsUsed: m.RowsUsed,
		ColsUsed: m.ColsUsed,
		Sparsity: profile,
	}
}

// ModelMapping is the placement of a whole model.
type ModelMapping struct {
	Layers      []LayerMapping
	TotalXbars  int
	Utilization float64 // TotalXbars / platform crossbars; >1 ⇒ time-multiplexed
}

// MapModel places every layer. Placements exceeding the platform capacity
// are allowed (weights are then time-multiplexed, as on any finite
// accelerator) and surface as Utilization > 1.
func (a ArchConfig) MapModel(m *dnn.Model) ModelMapping {
	out := ModelMapping{Layers: make([]LayerMapping, len(m.Layers))}
	for i := range m.Layers {
		out.Layers[i] = a.MapLayer(m.Layers[i])
		out.TotalXbars += out.Layers[i].Xbars
	}
	out.Utilization = float64(out.TotalXbars) / float64(a.TotalCrossbars())
	return out
}

// PeripheralEnergy returns the non-Eq.2 energy of one inference pass of a
// layer: eDRAM activation fetches, DAC streaming, and OR/IR buffer traffic.
// It is small relative to ADC/crossbar energy but keeps totals honest.
func (a ArchConfig) PeripheralEnergy(l dnn.Layer, m LayerMapping, cycles int) float64 {
	fetches := float64(l.InputVectors() * l.RowsRequired())
	dac := fetches * float64(a.InputBits) * a.DACEnergyPerBit
	edram := float64(l.InputVectors()) * a.EDRAMAccessEnergy * float64(m.RowTiles)
	buffers := float64(cycles*m.Xbars) * a.BufferEnergy
	return dac + edram + buffers
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
