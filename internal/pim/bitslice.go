package pim

import (
	"fmt"
	"math"
)

// BitSlicing models how multi-bit MVM is assembled from binary hardware:
// W-bit weights split across ceil(W/cellBits) cell columns ("weight
// slices"), A-bit input activations stream bit-serially through the DACs
// over A cycles ("input slices"), and the partial products recombine in the
// shift-and-add (S+A) units Table I provisions 96 of per tile. The paper's
// Eq. 1/2 absorb this machinery into their unit constants; this module
// breaks it back out so the recombination work and its energy/precision
// implications can be inspected per layer.
type BitSlicing struct {
	WeightBits  int // stored weight precision (platform: 8)
	BitsPerCell int // platform: 2
	InputBits   int // DAC-streamed activation precision (platform: 8)
	ADCBits     int // converter precision for the chosen OU height

	// ShiftAddEnergy is the energy of one S+A accumulate at 32 nm.
	ShiftAddEnergy float64 // J
}

// BitSlicingFor derives the slicing plan the platform uses for an OU of
// height r.
func (a ArchConfig) BitSlicingFor(r int) BitSlicing {
	return BitSlicing{
		WeightBits:     a.WeightBits,
		BitsPerCell:    a.BitsPerCell,
		InputBits:      a.InputBits,
		ADCBits:        a.ADCBits(r),
		ShiftAddEnergy: 50e-15, // 50 fJ per shift-add accumulate
	}
}

// Validate reports whether the plan is consistent.
func (b BitSlicing) Validate() error {
	switch {
	case b.WeightBits < 1 || b.BitsPerCell < 1 || b.InputBits < 1 || b.ADCBits < 1:
		return fmt.Errorf("pim: non-positive bit widths in %+v", b)
	case b.BitsPerCell > b.WeightBits:
		return fmt.Errorf("pim: cell bits %d exceed weight bits %d", b.BitsPerCell, b.WeightBits)
	}
	return nil
}

// WeightSlices returns the number of cell columns holding one weight.
func (b BitSlicing) WeightSlices() int {
	return (b.WeightBits + b.BitsPerCell - 1) / b.BitsPerCell
}

// InputSlices returns the DAC cycles needed to stream one activation.
func (b BitSlicing) InputSlices() int { return b.InputBits }

// PartialProducts returns the partial results one output value assembles:
// every (weight slice × input slice) pair produces one ADC sample to
// shift-and-add.
func (b BitSlicing) PartialProducts() int { return b.WeightSlices() * b.InputSlices() }

// ShiftAddsPerOutput returns the S+A accumulates per finished output value
// (one fewer than the partial-product count).
func (b BitSlicing) ShiftAddsPerOutput() int { return b.PartialProducts() - 1 }

// RecombinationEnergy returns the S+A energy to assemble `outputs` finished
// values.
func (b BitSlicing) RecombinationEnergy(outputs int) float64 {
	return float64(outputs) * float64(b.ShiftAddsPerOutput()) * b.ShiftAddEnergy
}

// AccumulatorBits returns the register width a finished output needs:
// ADC bits plus the shift range of the most significant weight and input
// slices plus log2 of the row-accumulation depth already inside the ADC
// sample. This is what sizes the output-register (OR) entries of Table I.
func (b BitSlicing) AccumulatorBits() int {
	shiftRange := (b.WeightSlices()-1)*b.BitsPerCell + (b.InputSlices() - 1)
	return b.ADCBits + shiftRange
}

// QuantizationSNR returns the ideal signal-to-noise ratio (dB) of the ADC
// sampling a full OU column: 6.02 dB per effective bit. An OU height above
// 2^ADCBits rows clips — ClippedRows reports how many.
func (b BitSlicing) QuantizationSNR() float64 {
	return 6.02 * float64(b.ADCBits)
}

// ClippedRows returns how many of r concurrently activated rows exceed the
// ADC's representable accumulation range (0 when the precision covers the
// OU height — the reconfigurable-ADC design goal).
func (b BitSlicing) ClippedRows(r int) int {
	capacity := 1 << b.ADCBits
	if r <= capacity {
		return 0
	}
	return r - capacity
}

// SlicedMVMEnergy returns the full per-output energy including ADC samples
// (energyPerSample each) and recombination — a finer-grained alternative to
// Eq. 2's lumped form, useful for sanity-checking the unit constants.
func (b BitSlicing) SlicedMVMEnergy(energyPerSample float64) float64 {
	samples := float64(b.PartialProducts())
	return samples*energyPerSample + float64(b.ShiftAddsPerOutput())*b.ShiftAddEnergy
}

// EffectiveOutputBits returns the usable precision of a finished output
// after slicing losses: min(accumulator width, weight+input precision +
// log2(rows)).
func (b BitSlicing) EffectiveOutputBits(rows int) int {
	full := b.WeightBits + b.InputBits + int(math.Ceil(math.Log2(float64(rows))))
	if acc := b.AccumulatorBits(); acc < full {
		return acc
	}
	return full
}
