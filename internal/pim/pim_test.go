package pim

import (
	"math"
	"testing"
	"testing/quick"

	"odin/internal/dnn"
	"odin/internal/sparsity"
)

func TestDefaultArchValid(t *testing.T) {
	t.Parallel()
	if err := DefaultArch().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	t.Parallel()
	mutations := []func(*ArchConfig){
		func(a *ArchConfig) { a.PEs = 0 },
		func(a *ArchConfig) { a.CrossbarSize = 2 },
		func(a *ArchConfig) { a.BitsPerCell = 0 },
		func(a *ArchConfig) { a.WeightBits = 1 },
		func(a *ArchConfig) { a.ClockHz = 0 },
		func(a *ArchConfig) { a.ADCMaxBits = 1 },
	}
	for i, mutate := range mutations {
		a := DefaultArch()
		mutate(&a)
		if err := a.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestStructuralCounts(t *testing.T) {
	t.Parallel()
	a := DefaultArch()
	if a.TotalCrossbars() != 36*4*96 {
		t.Fatalf("TotalCrossbars = %d", a.TotalCrossbars())
	}
	if a.CellsPerWeight() != 4 { // 8-bit weights / 2 bits per cell
		t.Fatalf("CellsPerWeight = %d", a.CellsPerWeight())
	}
}

func TestADCBitsClamping(t *testing.T) {
	t.Parallel()
	a := DefaultArch()
	cases := map[int]int{4: 3, 8: 3, 16: 4, 32: 5, 64: 6, 128: 6}
	for r, want := range cases {
		if got := a.ADCBits(r); got != want {
			t.Errorf("ADCBits(%d) = %d, want %d", r, got, want)
		}
	}
}

func TestMapLayerSmall(t *testing.T) {
	t.Parallel()
	a := DefaultArch()
	// 3×3×64 → 128: rows 576, cols 512.
	l := dnn.Layer{Name: "conv", Type: dnn.Conv, KernelH: 3, KernelW: 3,
		InChannels: 64, OutChannels: 128, InH: 16, InW: 16, Stride: 1}
	m := a.MapLayer(l)
	if m.RowsRequired != 576 || m.ColsRequired != 512 {
		t.Fatalf("requirements %d×%d", m.RowsRequired, m.ColsRequired)
	}
	if m.RowTiles != 5 || m.ColTiles != 4 || m.Xbars != 20 {
		t.Fatalf("tiling %d×%d = %d xbars", m.RowTiles, m.ColTiles, m.Xbars)
	}
	// Balanced split: ceil(576/5)=116 rows, ceil(512/4)=128 cols used.
	if m.RowsUsed != 116 || m.ColsUsed != 128 {
		t.Fatalf("occupancy %d×%d", m.RowsUsed, m.ColsUsed)
	}
	if m.CellsTotal != 576*512 {
		t.Fatalf("CellsTotal = %d", m.CellsTotal)
	}
}

func TestMapLayerTiny(t *testing.T) {
	t.Parallel()
	a := DefaultArch()
	l := dnn.Layer{Name: "head", Type: dnn.FC, KernelH: 1, KernelW: 1,
		InChannels: 64, OutChannels: 10, InH: 1, InW: 1, Stride: 1}
	m := a.MapLayer(l)
	if m.Xbars != 1 || m.RowsUsed != 64 || m.ColsUsed != 40 {
		t.Fatalf("tiny layer mapping %+v", m)
	}
}

func TestMapLayerNonZeroCells(t *testing.T) {
	t.Parallel()
	a := DefaultArch()
	l := dnn.Layer{Name: "x", Type: dnn.Conv, KernelH: 1, KernelW: 1,
		InChannels: 128, OutChannels: 32, InH: 8, InW: 8, Stride: 1,
		WeightSparsity: 0.75}
	m := a.MapLayer(l)
	if m.CellsNonZero != m.CellsTotal/4 {
		t.Fatalf("CellsNonZero = %d, want %d", m.CellsNonZero, m.CellsTotal/4)
	}
}

// Property: the balanced tiling conserves work — every required row/column
// fits, and occupancy never exceeds the crossbar.
func TestMappingConservationProperty(t *testing.T) {
	t.Parallel()
	a := DefaultArch()
	f := func(kRaw, inRaw, outRaw uint16) bool {
		k := int(kRaw%7) + 1
		in := int(inRaw%2048) + 1
		out := int(outRaw%4096) + 1
		l := dnn.Layer{Name: "p", Type: dnn.Conv, KernelH: k, KernelW: k,
			InChannels: in, OutChannels: out, InH: 8, InW: 8, Stride: 1}
		m := a.MapLayer(l)
		if m.RowsUsed > a.CrossbarSize || m.ColsUsed > a.CrossbarSize {
			return false
		}
		// Capacity across tiles covers the requirement.
		return m.RowsUsed*m.RowTiles >= m.RowsRequired &&
			m.ColsUsed*m.ColTiles >= m.ColsRequired &&
			m.Xbars == m.RowTiles*m.ColTiles
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMapModelUtilization(t *testing.T) {
	t.Parallel()
	a := DefaultArch()
	m := dnn.NewResNet18()
	mm := a.MapModel(m)
	if len(mm.Layers) != len(m.Layers) {
		t.Fatalf("mapped %d layers, want %d", len(mm.Layers), len(m.Layers))
	}
	sum := 0
	for _, lm := range mm.Layers {
		sum += lm.Xbars
	}
	if sum != mm.TotalXbars {
		t.Fatalf("TotalXbars %d != sum %d", mm.TotalXbars, sum)
	}
	if mm.Utilization <= 0 {
		t.Fatalf("utilization %v", mm.Utilization)
	}
}

func TestWorkBridgesToOUModel(t *testing.T) {
	t.Parallel()
	a := DefaultArch()
	model := dnn.NewVGG11()
	if err := sparsity.Prune(model, sparsity.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	l := model.Layers[4]
	m := a.MapLayer(l)
	w := m.Work(sparsity.ProfileFor(l, sparsity.DefaultConfig()))
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	cm := a.CostModel()
	g := a.Grid()
	cost := cm.Evaluate(w, g.SizeAt(2, 2))
	if cost.Energy <= 0 || cost.Latency <= 0 {
		t.Fatalf("degenerate cost %+v", cost)
	}
	// A sparse layer must need fewer cycles than its dense twin.
	dense := w
	dense.Sparsity = nil
	if w.Cycles(g.SizeAt(2, 2)) >= dense.Cycles(g.SizeAt(2, 2)) {
		t.Fatal("sparsity profile did not reduce cycles")
	}
}

func TestTileAreaMatchesTableI(t *testing.T) {
	t.Parallel()
	a := DefaultArch()
	if got := a.TileArea(); math.Abs(got-0.2822) > 1e-9 {
		t.Fatalf("tile area %v, want 0.2822 (paper: 0.28 mm²)", got)
	}
	if n := len(a.TileComponents()); n != 9 {
		t.Fatalf("Table I has %d rows, want 9", n)
	}
}

func TestSystemArea(t *testing.T) {
	t.Parallel()
	a := DefaultArch()
	want := a.TileArea() * 4 * 36
	if got := a.SystemArea(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("system area %v, want %v", got, want)
	}
}

func TestComponentAreasScaleWithStructure(t *testing.T) {
	t.Parallel()
	small := DefaultArch()
	small.CrossbarSize = 64
	var memDefault, memSmall float64
	for _, c := range DefaultArch().TileComponents() {
		if c.Name == "Memristor array" {
			memDefault = c.Area
		}
	}
	for _, c := range small.TileComponents() {
		if c.Name == "Memristor array" {
			memSmall = c.Area
		}
	}
	if math.Abs(memSmall-memDefault/4) > 1e-12 {
		t.Fatalf("memristor area did not scale with cell count: %v vs %v/4", memSmall, memDefault)
	}
}

func TestOverheadModelMatchesPaperScale(t *testing.T) {
	t.Parallel()
	a := DefaultArch()
	// The paper's policy: 4 inputs, two 6-way heads; our default adds a
	// small hidden trunk — use a representative 150-parameter policy.
	o := a.OverheadModel(150, 50, 100)
	if o.OUControllerArea != 0.005 {
		t.Fatalf("controller area %v", o.OUControllerArea)
	}
	// Paper: 1.8% of the 0.28 mm² tile.
	if o.OUControllerShare < 0.015 || o.OUControllerShare > 0.02 {
		t.Fatalf("controller share %v, want ≈ 0.018", o.OUControllerShare)
	}
	// Paper: 0.2% of the 36-PE system.
	if o.LearningAreaShare < 0.001 || o.LearningAreaShare > 0.003 {
		t.Fatalf("learning share %v, want ≈ 0.002", o.LearningAreaShare)
	}
	// Paper: 0.35 KB for 50 examples.
	if o.TrainingBufferKB < 0.3 || o.TrainingBufferKB > 0.4 {
		t.Fatalf("buffer KB %v, want ≈ 0.35", o.TrainingBufferKB)
	}
	// Paper: 0.14 mW prediction power for the tiny policy.
	if o.PredictPower < 0.05e-3 || o.PredictPower > 0.5e-3 {
		t.Errorf("prediction power %v W, want ≈ 0.14 mW", o.PredictPower)
	}
	// Power scales with the policy size (the ablation's premise).
	if big := a.OverheadModel(300, 50, 100); big.PredictPower <= o.PredictPower {
		t.Error("prediction power should grow with policy parameters")
	}
	if o.UpdateEnergy <= 0 {
		t.Fatal("update energy must be positive")
	}
	if o.PredictLatencyPct != 0.9 {
		t.Fatalf("latency penalty %v", o.PredictLatencyPct)
	}
}

func TestPeripheralEnergyPositiveAndSmall(t *testing.T) {
	t.Parallel()
	a := DefaultArch()
	model := dnn.NewVGG11()
	l := model.Layers[2]
	m := a.MapLayer(l)
	w := m.Work(nil)
	cm := a.CostModel()
	s := a.Grid().SizeAt(2, 2)
	cycles := w.Cycles(s)
	pe := a.PeripheralEnergy(l, m, cycles)
	core := cm.Energy(w, s)
	if pe <= 0 {
		t.Fatal("peripheral energy must be positive")
	}
	if pe > 10*core {
		t.Fatalf("peripheral energy %v implausibly dominates core %v", pe, core)
	}
}

func TestMapLayerDepthwisePacksGroups(t *testing.T) {
	t.Parallel()
	a := DefaultArch()
	// 96-channel depthwise 3×3: 96 groups of 9×(1·4) cells.
	l := dnn.Layer{Name: "dw", Type: dnn.Conv, KernelH: 3, KernelW: 3,
		InChannels: 96, OutChannels: 96, InH: 16, InW: 16, Stride: 1, Groups: 96}
	m := a.MapLayer(l)
	// 9 rows per group → 14 groups fit the 128-row crossbar → 7 arrays.
	if m.Xbars != 7 {
		t.Fatalf("depthwise crossbars = %d, want 7", m.Xbars)
	}
	if m.CellsTotal != 9*4*96 {
		t.Fatalf("cells = %d, want %d", m.CellsTotal, 9*4*96)
	}
	if m.RowsUsed > a.CrossbarSize || m.ColsUsed > a.CrossbarSize {
		t.Fatalf("occupancy %dx%d exceeds crossbar", m.RowsUsed, m.ColsUsed)
	}
}

func TestMapLayerGroupedConservesCells(t *testing.T) {
	t.Parallel()
	a := DefaultArch()
	for _, groups := range []int{1, 2, 4, 8} {
		l := dnn.Layer{Name: "g", Type: dnn.Conv, KernelH: 1, KernelW: 1,
			InChannels: 64, OutChannels: 128, InH: 8, InW: 8, Stride: 1, Groups: groups}
		m := a.MapLayer(l)
		want := l.Weights() * a.CellsPerWeight()
		if m.CellsTotal != want {
			t.Errorf("groups=%d cells %d, want %d", groups, m.CellsTotal, want)
		}
		if m.Xbars < 1 {
			t.Errorf("groups=%d no crossbars", groups)
		}
	}
}

func TestMapLayerHugeGroupBlocks(t *testing.T) {
	t.Parallel()
	// Groups whose blocks exceed one crossbar: 2 groups of 256×256 cells
	// fall back to one-group-per-crossbar granularity.
	a := DefaultArch()
	l := dnn.Layer{Name: "big", Type: dnn.Conv, KernelH: 1, KernelW: 1,
		InChannels: 512, OutChannels: 128, InH: 4, InW: 4, Stride: 1, Groups: 2}
	m := a.MapLayer(l)
	if m.Xbars < 2 {
		t.Fatalf("big grouped layer crossbars = %d, want ≥ 2", m.Xbars)
	}
	if m.RowsUsed > a.CrossbarSize || m.ColsUsed > a.CrossbarSize {
		t.Fatalf("occupancy %dx%d exceeds crossbar", m.RowsUsed, m.ColsUsed)
	}
}
