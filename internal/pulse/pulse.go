// Package pulse is the deterministic streaming-telemetry subsystem behind
// odinserve's live surfaces (GET /events, GET /statusz, `odinserve watch`).
// The serving layer publishes typed events onto a bounded fan-out Bus —
// per-batch retirements, per-run decision summaries, reprogram passes,
// fleet lifecycle, and shed/rejection outcomes — and the bus downsamples
// them into per-chip ring-buffered time series on fixed-interval
// virtual-clock buckets.
//
// # Determinism
//
// Every timestamp on an event is a virtual time taken from internal/clock
// by the publisher; the bus itself never reads a clock. Live sequence
// numbers are assignment-ordered (scheduling-dependent across chips), so
// the canonical export (WriteLog) orders events by (virtual time, chip,
// kind, payload) and renumbers them 1..n — the same collect-then-sort
// barrier obs uses for Chrome traces — which makes replay-mode event logs
// byte-identical at every worker count. Publishers must therefore only put
// scheduling-independent values on events: fields that are pure functions
// of virtual time and of the per-chip batch order (see the publishing
// sites in internal/serve). In particular the decision-cache Cached
// attribution is deliberately absent from decision events: cross-chip
// cache hits depend on worker scheduling, while everything else about a
// cached decision is byte-identical to the uncached search.
//
// A nil *Bus is a valid no-op: every method is nil-safe and costs one
// pointer test, so disabled instrumentation stays within the obs overhead
// budget (pulse_guard_test.go at the repo root arms the guard).
package pulse

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates event types. The numeric order is the canonical
// tie-break between kinds sharing one (time, chip) instant, chosen to
// match causality: a lifecycle op precedes work on the chip, a batch
// retires before the reprogram pass it forced is booked, and a decision
// for the *next* batch (taken at its start, which can equal the previous
// finish) sorts after both; sheds compare last.
type Kind uint8

const (
	KindLifecycle Kind = iota // hot add/remove
	KindBatch                 // batch retirement
	KindReprogram             // forced or maintenance write pass
	KindDecision              // one controller run's layer-decision summary
	KindShed                  // admission rejection (queue, quota, evict, reject)
	numKinds
)

var kindNames = [numKinds]string{"lifecycle", "batch", "reprogram", "decision", "shed"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind(" + strconv.Itoa(int(k)) + ")"
}

// ParseKind resolves an event-type name ("batch", "decision", ...).
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("pulse: unknown event kind %q (want %s)",
		s, strings.Join(kindNames[:], "|"))
}

// KindSet is a filter over event kinds.
type KindSet uint8

// AllKinds passes every event.
const AllKinds = KindSet(1<<numKinds - 1)

// Has reports whether the set admits k.
func (s KindSet) Has(k Kind) bool { return s&(1<<k) != 0 }

// ParseKinds parses a comma-separated kind list ("batch,shed"). The empty
// string means all kinds.
func ParseKinds(spec string) (KindSet, error) {
	if spec == "" {
		return AllKinds, nil
	}
	var out KindSet
	for _, f := range strings.Split(spec, ",") {
		k, err := ParseKind(strings.TrimSpace(f))
		if err != nil {
			return 0, err
		}
		out |= 1 << k
	}
	return out, nil
}

// Event is one telemetry record. Exactly one struct serves every kind
// (flat and allocation-light on the publish path); which fields are
// meaningful — and which JSON keys are emitted — depends on Kind, see
// AppendJSON. Seq is assigned by the bus at publish.
type Event struct {
	Seq  uint64
	Time float64 // virtual time (internal/clock) stamped by the publisher
	Kind Kind
	Chip int // owning chip id; -1 for fleet-level events (quota shed, reject)

	Model  string
	Tenant string // shed: shed tenant label; batch: distinct rider tenants, sorted

	// Shed fields.
	Request uint64 // shed request id
	Reason  string // "queue" | "quota" | "evict" | "reject"

	// Lifecycle fields.
	Action string // "add" | "remove"
	Fleet  int    // live chips after the op

	// Reprogram fields.
	Pass  string // "forced" | "maintenance"
	Count int    // cumulative write passes on the chip after this one

	// Batch fields.
	Batch   uint64  // per-chip batch id
	Size    int     // coalesced riders
	Queue   int     // backlog left behind at the batch's start (see serve)
	Latency float64 // batch virtual latency (s)
	Energy  float64 // batch energy (J)

	// Drift state (batch, reprogram, decision).
	Age      float64
	Deadline float64 // forced-reprogram age; +Inf when drift never forces

	// Decision fields.
	Layers        int
	Evaluations   int
	Disagreements int
	Strategy      string // distinct strategies in first-appearance layer order
	Sizes         string // chosen OU sizes, "RxC" comma-joined in layer order

	Reprogram bool // batch/decision: the run scheduled a reprogram pass
}

// AppendJSON appends the event's canonical JSON object: fixed key order
// per kind, floats in shortest round-trippable form ('g', -1), non-finite
// floats quoted ("+Inf") exactly like the obs trace export. Hand-assembled
// so byte identity is a property of the event values alone, never of
// encoder internals.
func (e *Event) AppendJSON(buf []byte) []byte {
	buf = append(buf, `{"seq":`...)
	buf = strconv.AppendUint(buf, e.Seq, 10)
	buf = append(buf, `,"t":`...)
	buf = appendFloat(buf, e.Time)
	buf = append(buf, `,"kind":"`...)
	buf = append(buf, e.Kind.String()...)
	buf = append(buf, `","chip":`...)
	buf = strconv.AppendInt(buf, int64(e.Chip), 10)
	buf = append(buf, `,"model":`...)
	buf = strconv.AppendQuote(buf, e.Model)
	switch e.Kind {
	case KindLifecycle:
		buf = append(buf, `,"action":`...)
		buf = strconv.AppendQuote(buf, e.Action)
		buf = append(buf, `,"fleet":`...)
		buf = strconv.AppendInt(buf, int64(e.Fleet), 10)
	case KindBatch:
		buf = append(buf, `,"batch":`...)
		buf = strconv.AppendUint(buf, e.Batch, 10)
		buf = append(buf, `,"size":`...)
		buf = strconv.AppendInt(buf, int64(e.Size), 10)
		buf = append(buf, `,"queue":`...)
		buf = strconv.AppendInt(buf, int64(e.Queue), 10)
		buf = append(buf, `,"lat":`...)
		buf = appendFloat(buf, e.Latency)
		buf = append(buf, `,"energy":`...)
		buf = appendFloat(buf, e.Energy)
		buf = append(buf, `,"age":`...)
		buf = appendFloat(buf, e.Age)
		buf = append(buf, `,"deadline":`...)
		buf = appendFloat(buf, e.Deadline)
		buf = append(buf, `,"reprogram":`...)
		buf = strconv.AppendBool(buf, e.Reprogram)
		if e.Tenant != "" {
			buf = append(buf, `,"tenants":`...)
			buf = strconv.AppendQuote(buf, e.Tenant)
		}
	case KindReprogram:
		buf = append(buf, `,"pass":`...)
		buf = strconv.AppendQuote(buf, e.Pass)
		buf = append(buf, `,"count":`...)
		buf = strconv.AppendInt(buf, int64(e.Count), 10)
		buf = append(buf, `,"age":`...)
		buf = appendFloat(buf, e.Age)
	case KindDecision:
		buf = append(buf, `,"layers":`...)
		buf = strconv.AppendInt(buf, int64(e.Layers), 10)
		buf = append(buf, `,"evals":`...)
		buf = strconv.AppendInt(buf, int64(e.Evaluations), 10)
		buf = append(buf, `,"disagree":`...)
		buf = strconv.AppendInt(buf, int64(e.Disagreements), 10)
		buf = append(buf, `,"strategy":`...)
		buf = strconv.AppendQuote(buf, e.Strategy)
		buf = append(buf, `,"sizes":`...)
		buf = strconv.AppendQuote(buf, e.Sizes)
		buf = append(buf, `,"age":`...)
		buf = appendFloat(buf, e.Age)
		buf = append(buf, `,"reprogram":`...)
		buf = strconv.AppendBool(buf, e.Reprogram)
	case KindShed:
		buf = append(buf, `,"request":`...)
		if e.Reason == "reject" {
			// Rejections happen before the dispatcher assigns an id.
			buf = append(buf, `null`...)
		} else {
			buf = strconv.AppendUint(buf, e.Request, 10)
		}
		buf = append(buf, `,"reason":`...)
		buf = strconv.AppendQuote(buf, e.Reason)
		if e.Tenant != "" {
			buf = append(buf, `,"tenant":`...)
			buf = strconv.AppendQuote(buf, e.Tenant)
		}
	}
	return append(buf, '}')
}

// AppendSSE appends the event as one Server-Sent Events frame: id from the
// sequence number (so Last-Event-ID resume works), event from the kind,
// data the canonical JSON.
func (e *Event) AppendSSE(buf []byte) []byte {
	buf = append(buf, "id: "...)
	buf = strconv.AppendUint(buf, e.Seq, 10)
	buf = append(buf, "\nevent: "...)
	buf = append(buf, e.Kind.String()...)
	buf = append(buf, "\ndata: "...)
	buf = e.AppendJSON(buf)
	return append(buf, "\n\n"...)
}

// appendFloat renders a float as a JSON value: shortest round-trippable
// decimal, with non-finite values quoted (JSON has no Inf/NaN literals) —
// the obs trace-export convention.
func appendFloat(buf []byte, v float64) []byte {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if strings.ContainsAny(s, "IN") { // +Inf, -Inf, NaN
		return strconv.AppendQuote(buf, s)
	}
	return append(buf, s...)
}
