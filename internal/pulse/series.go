package pulse

import (
	"math"

	"odin/internal/telemetry"
)

// LatencyBounds are the histogram bucket bounds used for per-chip latency
// quantiles: decade-and-a-third spacing over the simulated service-time
// range (tens of microseconds to tens of seconds).
var LatencyBounds = []float64{
	1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1, 3, 10,
}

// Bucket is one closed fixed-interval series sample for a chip. Quantiles
// are computed from the bucket's own latency histogram at close; empty
// quantiles render as 0, not NaN, so buckets marshal as plain JSON.
type Bucket struct {
	Start      float64 `json:"start"`      // bucket start (virtual s)
	Completed  int     `json:"completed"`  // requests retired in the bucket
	Batches    int     `json:"batches"`    // batches retired
	Sheds      int     `json:"sheds"`      // requests shed on this chip
	Reprograms int     `json:"reprograms"` // write passes booked
	Energy     float64 `json:"energy"`     // energy retired (J)
	P50        float64 `json:"p50"`        // batch-latency quantiles (s)
	P90        float64 `json:"p90"`
	P99        float64 `json:"p99"`
}

// chipSeries is one chip's downsampled history: a ring of closed buckets,
// the open bucket being filled, and cumulative figures for /statusz.
// Bus.mu guards everything here.
type chipSeries struct {
	model    string
	removed  bool
	interval float64
	window   int

	cur     Bucket
	started bool                 // cur.Start is meaningful
	hist    *telemetry.Histogram // per-bucket latencies, fresh each bucket
	cum     *telemetry.Histogram // all-time latencies (statusz quantiles)

	closed []Bucket // ring, oldest first once saturated
	head   int

	served, batches, sheds, reprograms, decisions uint64
	queue                                         int
	age, deadline                                 float64
	lastT                                         float64
}

func newChipSeries(model string, opts Options) *chipSeries {
	return &chipSeries{
		model:    model,
		interval: opts.Interval,
		window:   opts.Window,
		hist:     telemetry.NewHistogram(LatencyBounds),
		cum:      telemetry.NewHistogram(LatencyBounds),
		deadline: math.Inf(1),
	}
}

// roll closes the open bucket if t has moved past it and starts the bucket
// containing t. Gaps (no events for several intervals) stay implicit: only
// buckets that saw events are materialised.
func (cs *chipSeries) roll(t float64) {
	start := math.Floor(t/cs.interval) * cs.interval
	if !cs.started {
		cs.cur = Bucket{Start: start}
		cs.started = true
		return
	}
	if start <= cs.cur.Start {
		return
	}
	cs.closeBucket()
	cs.cur = Bucket{Start: start}
	cs.hist = telemetry.NewHistogram(LatencyBounds)
}

func (cs *chipSeries) closeBucket() {
	b := cs.cur
	b.P50 = finiteOrZero(cs.hist.Quantile(0.50))
	b.P90 = finiteOrZero(cs.hist.Quantile(0.90))
	b.P99 = finiteOrZero(cs.hist.Quantile(0.99))
	if len(cs.closed) < cs.window {
		cs.closed = append(cs.closed, b)
	} else {
		cs.closed[cs.head] = b
		cs.head = (cs.head + 1) % cs.window
	}
}

func finiteOrZero(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// observe folds one published event into the owning chip's series. Called
// under Bus.mu. Fleet-level events (chip < 0) only touch fleet counters.
func (b *Bus) observe(e Event) {
	if e.Chip < 0 {
		return
	}
	cs := b.register(e.Chip, e.Model)
	if e.Time > cs.lastT {
		cs.lastT = e.Time
	}
	cs.roll(e.Time)
	switch e.Kind {
	case KindBatch:
		cs.cur.Completed += e.Size
		cs.cur.Batches++
		cs.cur.Energy += e.Energy
		cs.hist.Observe(e.Latency)
		cs.cum.Observe(e.Latency)
		cs.served += uint64(e.Size)
		cs.batches++
		cs.queue = e.Queue
		cs.age = e.Age
		cs.deadline = e.Deadline
	case KindShed:
		cs.cur.Sheds++
		cs.sheds++
	case KindReprogram:
		cs.cur.Reprograms++
		cs.reprograms++
		cs.age = e.Age
	case KindDecision:
		cs.decisions++
	case KindLifecycle:
		if e.Action == "remove" {
			cs.removed = true
			cs.queue = 0
		}
	}
}

// ChipStatus is one chip's row in a Status snapshot: identity, the latest
// drift/queue state, cumulative totals, all-time latency quantiles, and
// the closed-bucket tail (oldest first).
type ChipStatus struct {
	Chip    int    `json:"chip"`
	Model   string `json:"model"`
	Removed bool   `json:"removed,omitempty"`

	Queue     int     `json:"queue"`
	Age       float64 `json:"age"`
	DriftFrac float64 `json:"drift_frac"` // age / forced deadline; 0 when drift never forces

	Served     uint64 `json:"served"`
	Batches    uint64 `json:"batches"`
	Sheds      uint64 `json:"sheds"`
	Reprograms uint64 `json:"reprograms"`
	Decisions  uint64 `json:"decisions"`

	Throughput float64 `json:"throughput"` // last closed bucket, requests/s
	P50        float64 `json:"p50"`        // all-time batch-latency quantiles (s)
	P90        float64 `json:"p90"`
	P99        float64 `json:"p99"`

	Buckets []Bucket `json:"buckets,omitempty"`
}

// Status is the fleet snapshot behind GET /statusz.
type Status struct {
	Seq    uint64       `json:"seq"`  // last published sequence number
	Time   float64      `json:"time"` // largest published event time
	Events uint64       `json:"events"`
	Chips  []ChipStatus `json:"chips"`
}

// Snapshot renders every chip's series tail, sorted by chip id. The open
// bucket is not exposed (its quantiles are still moving); Throughput and
// the Buckets tail come from closed buckets only.
func (b *Bus) Snapshot() Status {
	if b == nil {
		return Status{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := Status{Seq: b.nextSeq, Time: b.lastT, Events: b.nextSeq}
	for _, id := range b.order {
		cs := b.series[id]
		row := ChipStatus{
			Chip:       id,
			Model:      cs.model,
			Removed:    cs.removed,
			Queue:      cs.queue,
			Age:        cs.age,
			Served:     cs.served,
			Batches:    cs.batches,
			Sheds:      cs.sheds,
			Reprograms: cs.reprograms,
			Decisions:  cs.decisions,
			P50:        finiteOrZero(cs.cum.Quantile(0.50)),
			P90:        finiteOrZero(cs.cum.Quantile(0.90)),
			P99:        finiteOrZero(cs.cum.Quantile(0.99)),
		}
		if !math.IsInf(cs.deadline, 1) && cs.deadline > 0 {
			row.DriftFrac = cs.age / cs.deadline
		}
		n := len(cs.closed)
		if n > 0 {
			row.Buckets = make([]Bucket, 0, n)
			for i := 0; i < n; i++ {
				row.Buckets = append(row.Buckets, cs.closed[(cs.head+i)%n])
			}
			last := row.Buckets[n-1]
			row.Throughput = float64(last.Completed) / cs.interval
		}
		st.Chips = append(st.Chips, row)
	}
	return st
}
