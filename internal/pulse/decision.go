package pulse

import (
	"strconv"
	"strings"

	"odin/internal/obs"
)

// DecisionEvent summarises one controller run's layer decisions as a
// KindDecision event — the audit-hook lift: serve taps each chip's
// obs.AuditLog and publishes this per run. The summary deliberately
// carries only scheduling-independent fields: strategies, evaluation
// counts, disagreements, and chosen sizes are byte-identical whether a
// decision came from a live search or the shared decision cache (the
// decache contract), while the Cached attribution itself depends on
// cross-chip scheduling and is therefore excluded — including it would
// break the worker-count byte-identity of replay event logs.
func DecisionEvent(chip int, model string, r obs.RunAudit) Event {
	var sizes strings.Builder
	var strats []string
	for i, l := range r.Layers {
		if i > 0 {
			sizes.WriteByte(',')
		}
		sizes.WriteString(strconv.Itoa(l.Chosen.R))
		sizes.WriteByte('x')
		sizes.WriteString(strconv.Itoa(l.Chosen.C))
		seen := false
		for _, s := range strats {
			if s == l.Strategy {
				seen = true
				break
			}
		}
		if !seen {
			strats = append(strats, l.Strategy)
		}
	}
	return Event{
		Kind:          KindDecision,
		Time:          r.Time,
		Chip:          chip,
		Model:         model,
		Layers:        len(r.Layers),
		Evaluations:   r.Evaluations(),
		Disagreements: r.Disagreements(),
		Strategy:      strings.Join(strats, ","),
		Sizes:         sizes.String(),
		Age:           r.Age,
		Reprogram:     r.Reprogrammed,
	}
}
