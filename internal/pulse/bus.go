package pulse

import (
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"odin/internal/telemetry"
)

// Options parameterise a Bus.
type Options struct {
	// Ring bounds how many events are retained for Last-Event-ID resume
	// and WriteLog. 0 keeps everything (replay logging); live servers
	// should bound it (cmd/odinserve defaults to 8192).
	Ring int
	// Interval is the virtual-time width of one series bucket in seconds
	// (default 1).
	Interval float64
	// Window bounds the closed buckets retained per chip (default 32).
	Window int
	// Registry receives the odin_pulse_* meters; nil creates a private one.
	Registry *telemetry.Registry
}

// Bus is the fan-out event hub: publishers (the serve dispatcher, workers,
// submitters) push events, subscribers (SSE handlers) receive them on
// bounded channels, and the bus maintains the resume ring and the per-chip
// series. All state is guarded by one mutex; the critical section is
// small (ring append, series bucket arithmetic, non-blocking channel
// sends), so publishers — including the serve dispatcher — never block on
// a slow consumer: a subscriber whose channel is full loses the event and
// has the loss counted against it instead.
type Bus struct {
	opts Options

	mu      sync.Mutex
	nextSeq uint64
	ring    []Event // insertion order; bounded by opts.Ring when positive
	head    int     // ring start when saturated
	subs    []*Subscription
	series  map[int]*chipSeries
	order   []int   // sorted chip ids, rebuilt on registration
	lastT   float64 // largest published event time

	events     *telemetry.CounterVec
	dropped    *telemetry.Counter
	evictedCtr *telemetry.Counter
	subsGauge  *telemetry.Gauge
}

// New builds a Bus. See Options for defaults.
func New(opts Options) *Bus {
	if opts.Interval <= 0 {
		opts.Interval = 1
	}
	if opts.Window <= 0 {
		opts.Window = 32
	}
	if opts.Registry == nil {
		opts.Registry = telemetry.NewRegistry()
	}
	r := opts.Registry
	return &Bus{
		opts:   opts,
		series: make(map[int]*chipSeries),
		events: r.CounterVec("odin_pulse_events_total",
			"telemetry events published per kind", "kind"),
		dropped: r.Counter("odin_pulse_dropped_total",
			"events lost to slow subscribers (full channel)"),
		evictedCtr: r.Counter("odin_pulse_ring_evicted_total",
			"events evicted from the resume ring"),
		subsGauge: r.Gauge("odin_pulse_subscribers", "live event subscribers"),
	}
}

// Enabled reports whether the bus records anything; callers gate event
// assembly on it so a nil bus costs one pointer test.
func (b *Bus) Enabled() bool { return b != nil }

// Register creates the chip's series row without publishing an event —
// seed chips are configuration, not lifecycle, so they appear in /statusz
// but not in event logs (hot adds flow through KindLifecycle instead).
func (b *Bus) Register(chip int, model string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.register(chip, model)
	b.mu.Unlock()
}

func (b *Bus) register(chip int, model string) *chipSeries {
	cs, ok := b.series[chip]
	if !ok {
		cs = newChipSeries(model, b.opts)
		b.series[chip] = cs
		b.order = append(b.order, chip)
		sort.Ints(b.order)
	}
	return cs
}

// Publish assigns the event its sequence number, retains it in the resume
// ring, folds it into the owning chip's series, and fans it out. Never
// blocks: subscriber sends are non-blocking, and a full channel counts
// the loss (odin_pulse_dropped_total plus the subscription's own meter)
// instead of stalling the publisher.
func (b *Bus) Publish(e Event) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.nextSeq++
	e.Seq = b.nextSeq
	if e.Time > b.lastT {
		b.lastT = e.Time
	}
	if n := b.opts.Ring; n > 0 && len(b.ring) == n {
		b.ring[b.head] = e
		b.head = (b.head + 1) % n
		b.evictedCtr.Inc()
	} else {
		b.ring = append(b.ring, e)
	}
	b.observe(e)
	b.events.With(e.Kind.String()).Inc()
	for _, sub := range b.subs {
		if !sub.kinds.Has(e.Kind) {
			continue
		}
		select {
		case sub.ch <- e:
		default:
			sub.dropped.Add(1)
			b.dropped.Inc()
		}
	}
	b.mu.Unlock()
}

// Subscription is one bounded event consumer. Receive from C; Close
// detaches (the channel is never closed by the bus, so a drained server
// simply goes quiet).
type Subscription struct {
	bus     *Bus
	ch      chan Event
	kinds   KindSet
	dropped atomic.Uint64
}

// Subscribe attaches a consumer with the given channel capacity (minimum
// 1) and kind filter.
func (b *Bus) Subscribe(buf int, kinds KindSet) *Subscription {
	if buf < 1 {
		buf = 1
	}
	sub := &Subscription{bus: b, ch: make(chan Event, buf), kinds: kinds}
	b.mu.Lock()
	b.subs = append(b.subs, sub)
	b.subsGauge.Set(float64(len(b.subs)))
	b.mu.Unlock()
	return sub
}

// C is the subscription's event channel.
func (s *Subscription) C() <-chan Event { return s.ch }

// TakeDropped returns and resets the events lost to this subscriber's
// full channel since the last call.
func (s *Subscription) TakeDropped() uint64 { return s.dropped.Swap(0) }

// Close detaches the subscription from the bus.
func (s *Subscription) Close() {
	b := s.bus
	b.mu.Lock()
	for i, sub := range b.subs {
		if sub == s {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			break
		}
	}
	b.subsGauge.Set(float64(len(b.subs)))
	b.mu.Unlock()
}

// Since copies the retained events with Seq > seq that pass the filter, in
// publish order — the Last-Event-ID backfill. Resume is best-effort by
// construction: events older than the ring are gone (the SSE handler
// reports the gap as a comment frame).
func (b *Bus) Since(seq uint64, kinds KindSet) []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Event
	n := len(b.ring)
	for i := 0; i < n; i++ {
		e := b.ring[(b.head+i)%n]
		if e.Seq > seq && kinds.Has(e.Kind) {
			out = append(out, e)
		}
	}
	return out
}

// LastSeq returns the highest sequence number assigned so far.
func (b *Bus) LastSeq() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.nextSeq
}

// WriteLog emits the canonical event log: one JSON object per line,
// ordered by (virtual time, chip, kind, payload) and renumbered 1..n.
// Live sequence numbers depend on when workers happened to publish
// relative to the dispatcher, so they cannot appear in replay-stable
// output; the sort is total because any two events sharing (time, chip,
// kind) differ in payload (distinct batch or request ids), and renumbering
// after the sort makes seq itself canonical. This is the byte stream the
// worker-count invariance property and `make pulsesmoke` pin.
func (b *Bus) WriteLog(w io.Writer) error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	evs := make([]Event, 0, len(b.ring))
	n := len(b.ring)
	for i := 0; i < n; i++ {
		evs = append(evs, b.ring[(b.head+i)%n])
	}
	b.mu.Unlock()

	keys := make([]string, len(evs))
	var kb []byte
	for i := range evs {
		e := evs[i]
		e.Seq = 0 // scheduling-dependent; excluded from the sort key
		kb = e.AppendJSON(kb[:0])
		keys[i] = string(kb)
	}
	idx := make([]int, len(evs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, c int) bool {
		ea, ec := &evs[idx[a]], &evs[idx[c]]
		if ea.Time != ec.Time { //lint:allow floateq -- canonical sort key: exact bit-order on identical virtual times, not a tolerance test
			return ea.Time < ec.Time
		}
		if ea.Chip != ec.Chip {
			return ea.Chip < ec.Chip
		}
		if ea.Kind != ec.Kind {
			return ea.Kind < ec.Kind
		}
		return keys[idx[a]] < keys[idx[c]]
	})
	var buf []byte
	for i, j := range idx {
		e := evs[j]
		e.Seq = uint64(i + 1)
		buf = e.AppendJSON(buf[:0])
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
