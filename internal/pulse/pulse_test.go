package pulse

import (
	"math"
	"strings"
	"testing"

	"odin/internal/telemetry"
)

func TestKindNamesRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("ParseKind(bogus): want error")
	}
}

func TestParseKinds(t *testing.T) {
	all, err := ParseKinds("")
	if err != nil || all != AllKinds {
		t.Fatalf("ParseKinds(\"\") = %v, %v; want AllKinds", all, err)
	}
	ks, err := ParseKinds("batch, shed")
	if err != nil {
		t.Fatal(err)
	}
	if !ks.Has(KindBatch) || !ks.Has(KindShed) || ks.Has(KindDecision) {
		t.Fatalf("ParseKinds(batch,shed) = %b", ks)
	}
	if _, err := ParseKinds("batch,nope"); err == nil {
		t.Fatal("ParseKinds with unknown kind: want error")
	}
}

func TestAppendJSONCanonical(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{
			Event{Seq: 1, Time: 0.5, Kind: KindLifecycle, Chip: 3, Model: "VGG11",
				Action: "add", Fleet: 4},
			`{"seq":1,"t":0.5,"kind":"lifecycle","chip":3,"model":"VGG11","action":"add","fleet":4}`,
		},
		{
			Event{Seq: 2, Time: 1.25, Kind: KindBatch, Chip: 0, Model: "VGG11",
				Batch: 7, Size: 3, Queue: 2, Latency: 0.01, Energy: 1.5,
				Age: 0.75, Deadline: math.Inf(1), Reprogram: false},
			`{"seq":2,"t":1.25,"kind":"batch","chip":0,"model":"VGG11","batch":7,"size":3,"queue":2,"lat":0.01,"energy":1.5,"age":0.75,"deadline":"+Inf","reprogram":false}`,
		},
		{
			Event{Seq: 3, Time: 2, Kind: KindBatch, Chip: 1, Model: "AlexNet",
				Batch: 1, Size: 1, Latency: 0.25, Energy: 2, Age: 1, Deadline: 8,
				Reprogram: true, Tenant: "a,b"},
			`{"seq":3,"t":2,"kind":"batch","chip":1,"model":"AlexNet","batch":1,"size":1,"queue":0,"lat":0.25,"energy":2,"age":1,"deadline":8,"reprogram":true,"tenants":"a,b"}`,
		},
		{
			Event{Seq: 4, Time: 2, Kind: KindReprogram, Chip: 1, Model: "AlexNet",
				Pass: "forced", Count: 2, Age: 0},
			`{"seq":4,"t":2,"kind":"reprogram","chip":1,"model":"AlexNet","pass":"forced","count":2,"age":0}`,
		},
		{
			Event{Seq: 5, Time: 3, Kind: KindDecision, Chip: 0, Model: "VGG11",
				Layers: 2, Evaluations: 10, Disagreements: 1, Strategy: "exact",
				Sizes: "8x8,16x16", Age: 0.5, Reprogram: true},
			`{"seq":5,"t":3,"kind":"decision","chip":0,"model":"VGG11","layers":2,"evals":10,"disagree":1,"strategy":"exact","sizes":"8x8,16x16","age":0.5,"reprogram":true}`,
		},
		{
			Event{Seq: 6, Time: 4, Kind: KindShed, Chip: -1, Model: "VGG11",
				Request: 9, Reason: "quota", Tenant: "t0"},
			`{"seq":6,"t":4,"kind":"shed","chip":-1,"model":"VGG11","request":9,"reason":"quota","tenant":"t0"}`,
		},
		{
			// Rejections carry no request id: they precede dispatch.
			Event{Seq: 7, Time: 5, Kind: KindShed, Chip: -1, Model: "VGG11",
				Request: 99, Reason: "reject"},
			`{"seq":7,"t":5,"kind":"shed","chip":-1,"model":"VGG11","request":null,"reason":"reject"}`,
		},
	}
	for _, tc := range cases {
		got := string(tc.e.AppendJSON(nil))
		if got != tc.want {
			t.Errorf("AppendJSON %v:\n got  %s\n want %s", tc.e.Kind, got, tc.want)
		}
	}
}

func TestAppendSSEFrame(t *testing.T) {
	e := Event{Seq: 42, Time: 1, Kind: KindShed, Chip: -1, Model: "m", Reason: "queue"}
	frame := string(e.AppendSSE(nil))
	if !strings.HasPrefix(frame, "id: 42\nevent: shed\ndata: {") {
		t.Fatalf("SSE frame prefix wrong:\n%s", frame)
	}
	if !strings.HasSuffix(frame, "}\n\n") {
		t.Fatalf("SSE frame must end with blank line:\n%q", frame)
	}
}

func TestNilBusNoOp(t *testing.T) {
	var b *Bus
	if b.Enabled() {
		t.Fatal("nil bus reports Enabled")
	}
	b.Register(0, "m")
	b.Publish(Event{Kind: KindBatch})
	if got := b.Since(0, AllKinds); got != nil {
		t.Fatalf("nil Since = %v", got)
	}
	if b.LastSeq() != 0 {
		t.Fatal("nil LastSeq != 0")
	}
	if err := b.WriteLog(nil); err != nil {
		t.Fatalf("nil WriteLog: %v", err)
	}
	if st := b.Snapshot(); len(st.Chips) != 0 || st.Seq != 0 {
		t.Fatalf("nil Snapshot = %+v", st)
	}
}

func TestRingEvictionAndSince(t *testing.T) {
	reg := telemetry.NewRegistry()
	b := New(Options{Ring: 4, Registry: reg})
	for i := 1; i <= 6; i++ {
		b.Publish(Event{Time: float64(i), Kind: KindBatch, Chip: 0, Model: "m", Batch: uint64(i)})
	}
	got := b.Since(0, AllKinds)
	if len(got) != 4 {
		t.Fatalf("Since(0) after eviction: %d events, want 4", len(got))
	}
	if got[0].Seq != 3 || got[3].Seq != 6 {
		t.Fatalf("Since(0) seq range = [%d,%d], want [3,6]", got[0].Seq, got[3].Seq)
	}
	if got := b.Since(5, AllKinds); len(got) != 1 || got[0].Seq != 6 {
		t.Fatalf("Since(5) = %v", got)
	}
	if b.LastSeq() != 6 {
		t.Fatalf("LastSeq = %d, want 6", b.LastSeq())
	}
	if v := reg.Counter("odin_pulse_ring_evicted_total", "").Value(); v != 2 {
		t.Fatalf("evicted counter = %d, want 2", v)
	}
}

func TestSinceFilter(t *testing.T) {
	b := New(Options{})
	b.Publish(Event{Time: 1, Kind: KindBatch, Chip: 0, Model: "m"})
	b.Publish(Event{Time: 2, Kind: KindShed, Chip: -1, Model: "m", Reason: "queue"})
	b.Publish(Event{Time: 3, Kind: KindBatch, Chip: 0, Model: "m"})
	sheds, _ := ParseKinds("shed")
	got := b.Since(0, sheds)
	if len(got) != 1 || got[0].Kind != KindShed {
		t.Fatalf("filtered Since = %v", got)
	}
}

func TestSubscribeFilterAndDrop(t *testing.T) {
	reg := telemetry.NewRegistry()
	b := New(Options{Registry: reg})
	kinds, _ := ParseKinds("batch")
	sub := b.Subscribe(1, kinds)
	defer sub.Close()

	b.Publish(Event{Time: 1, Kind: KindShed, Chip: -1, Model: "m", Reason: "queue"})
	b.Publish(Event{Time: 2, Kind: KindBatch, Chip: 0, Model: "m", Batch: 1})
	b.Publish(Event{Time: 3, Kind: KindBatch, Chip: 0, Model: "m", Batch: 2}) // channel full -> dropped

	e := <-sub.C()
	if e.Kind != KindBatch || e.Batch != 1 {
		t.Fatalf("first delivered event = %+v", e)
	}
	if d := sub.TakeDropped(); d != 1 {
		t.Fatalf("TakeDropped = %d, want 1", d)
	}
	if d := sub.TakeDropped(); d != 0 {
		t.Fatalf("TakeDropped not reset: %d", d)
	}
	if v := reg.Counter("odin_pulse_dropped_total", "").Value(); v != 1 {
		t.Fatalf("dropped counter = %d, want 1", v)
	}

	sub.Close()
	b.Publish(Event{Time: 4, Kind: KindBatch, Chip: 0, Model: "m", Batch: 3})
	select {
	case e := <-sub.C():
		if e.Batch == 3 {
			t.Fatal("closed subscription still receives")
		}
	default:
	}
}

func TestWriteLogCanonicalOrder(t *testing.T) {
	b := New(Options{})
	// Publish deliberately out of canonical order: later times first,
	// higher chips first at equal times.
	b.Publish(Event{Time: 2, Kind: KindBatch, Chip: 1, Model: "m", Batch: 5})
	b.Publish(Event{Time: 1, Kind: KindDecision, Chip: 0, Model: "m", Layers: 1})
	b.Publish(Event{Time: 1, Kind: KindBatch, Chip: 0, Model: "m", Batch: 1})
	b.Publish(Event{Time: 1, Kind: KindBatch, Chip: 0, Model: "m", Batch: 2})

	var sb strings.Builder
	if err := b.WriteLog(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("WriteLog lines = %d, want 4", len(lines))
	}
	wantOrder := []string{
		`"seq":1,"t":1,"kind":"batch","chip":0,"model":"m","batch":1`,
		`"seq":2,"t":1,"kind":"batch","chip":0,"model":"m","batch":2`,
		`"seq":3,"t":1,"kind":"decision","chip":0`,
		`"seq":4,"t":2,"kind":"batch","chip":1,"model":"m","batch":5`,
	}
	for i, want := range wantOrder {
		if !strings.Contains(lines[i], want) {
			t.Errorf("line %d = %s\n  want fragment %s", i, lines[i], want)
		}
	}
}

func TestSeriesBucketsAndSnapshot(t *testing.T) {
	b := New(Options{Interval: 1, Window: 4})
	b.Register(0, "VGG11")

	// Bucket [0,1): two batches.
	b.Publish(Event{Time: 0.2, Kind: KindBatch, Chip: 0, Model: "VGG11",
		Batch: 1, Size: 2, Queue: 1, Latency: 0.01, Energy: 1, Age: 0.2, Deadline: 10})
	b.Publish(Event{Time: 0.8, Kind: KindBatch, Chip: 0, Model: "VGG11",
		Batch: 2, Size: 3, Queue: 0, Latency: 0.02, Energy: 2, Age: 0.8, Deadline: 10})
	// Bucket [2,3): one batch plus a reprogram; bucket [1,2) stays implicit.
	b.Publish(Event{Time: 2.5, Kind: KindBatch, Chip: 0, Model: "VGG11",
		Batch: 3, Size: 1, Queue: 4, Latency: 0.3, Energy: 3, Age: 2.5, Deadline: 10})
	if df := b.Snapshot().Chips[0].DriftFrac; df != 0.25 {
		t.Fatalf("drift frac before reprogram = %g, want 0.25", df)
	}
	b.Publish(Event{Time: 2.6, Kind: KindReprogram, Chip: 0, Model: "VGG11",
		Pass: "forced", Count: 1, Age: 0})
	// Roll past bucket [2,3) so it closes.
	b.Publish(Event{Time: 3.1, Kind: KindDecision, Chip: 0, Model: "VGG11", Layers: 1})

	st := b.Snapshot()
	if len(st.Chips) != 1 {
		t.Fatalf("Snapshot chips = %d", len(st.Chips))
	}
	c := st.Chips[0]
	if c.Chip != 0 || c.Model != "VGG11" {
		t.Fatalf("chip row identity = %+v", c)
	}
	if c.Served != 6 || c.Batches != 3 || c.Reprograms != 1 || c.Decisions != 1 {
		t.Fatalf("totals = served %d batches %d reprograms %d decisions %d",
			c.Served, c.Batches, c.Reprograms, c.Decisions)
	}
	if c.Queue != 4 {
		t.Fatalf("queue = %d, want 4", c.Queue)
	}
	if len(c.Buckets) != 2 {
		t.Fatalf("closed buckets = %d, want 2 (gap bucket must stay implicit)", len(c.Buckets))
	}
	b0, b1 := c.Buckets[0], c.Buckets[1]
	if b0.Start != 0 || b0.Completed != 5 || b0.Batches != 2 || b0.Energy != 3 {
		t.Fatalf("bucket[0] = %+v", b0)
	}
	if b1.Start != 2 || b1.Completed != 1 || b1.Reprograms != 1 {
		t.Fatalf("bucket[1] = %+v", b1)
	}
	if b0.P50 <= 0 || b0.P99 < b0.P50 {
		t.Fatalf("bucket[0] quantiles p50=%g p99=%g", b0.P50, b0.P99)
	}
	if c.Throughput != 1 { // last closed bucket: 1 request / 1 s interval
		t.Fatalf("throughput = %g, want 1", c.Throughput)
	}
	if c.DriftFrac != 0 {
		t.Fatalf("drift frac after reprogram reset = %g, want 0", c.DriftFrac)
	}
}

func TestSnapshotRemovedChip(t *testing.T) {
	b := New(Options{})
	b.Publish(Event{Time: 1, Kind: KindBatch, Chip: 2, Model: "m", Size: 1,
		Queue: 3, Latency: 0.1, Deadline: math.Inf(1)})
	b.Publish(Event{Time: 2, Kind: KindLifecycle, Chip: 2, Model: "m",
		Action: "remove", Fleet: 0})
	st := b.Snapshot()
	if len(st.Chips) != 1 {
		t.Fatalf("chips = %d", len(st.Chips))
	}
	c := st.Chips[0]
	if !c.Removed || c.Queue != 0 {
		t.Fatalf("removed chip row = %+v", c)
	}
	if c.DriftFrac != 0 {
		t.Fatalf("infinite deadline must yield DriftFrac 0, got %g", c.DriftFrac)
	}
}
