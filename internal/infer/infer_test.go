package infer

import (
	"testing"

	"odin/internal/ou"
	"odin/internal/reram"
)

func fineDevice() reram.DeviceParams {
	p := reram.DefaultDeviceParams()
	p.BitsPerCell = 6 // fine quantisation so the ideal path tracks float math
	return p
}

func testEngine(t *testing.T) *Engine {
	t.Helper()
	net := RandomNet(1, 16, 16, 4, "infer-test")
	e, err := NewEngine(net, fineDevice(), 64)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineShapes(t *testing.T) {
	t.Parallel()
	e := testEngine(t)
	in := RandomInputs(1, 1, 16, 16, "in")[0]
	logits := e.Infer(in, Options{Ideal: true})
	if len(logits) != 4 {
		t.Fatalf("logits = %d, want 4 classes", len(logits))
	}
}

func TestEngineRejectsBadCrossbar(t *testing.T) {
	t.Parallel()
	net := RandomNet(1, 16, 16, 4, "x")
	if _, err := NewEngine(net, fineDevice(), 2); err == nil {
		t.Fatal("crossbar size 2 accepted")
	}
}

func TestInferPanicsOnWrongInput(t *testing.T) {
	t.Parallel()
	e := testEngine(t)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input shape did not panic")
		}
	}()
	e.Infer(NewTensor(1, 8, 8), Options{Ideal: true})
}

func TestIdealDeterministic(t *testing.T) {
	t.Parallel()
	e := testEngine(t)
	in := RandomInputs(1, 1, 16, 16, "det")[0]
	a := e.Infer(in, Options{Ideal: true})
	b := e.Infer(in, Options{Ideal: true})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("ideal inference not deterministic")
		}
	}
}

func TestFreshDeviceTracksIdeal(t *testing.T) {
	t.Parallel()
	// At t=0 with a small OU the non-ideal path should rarely flip classes.
	e := testEngine(t)
	inputs := RandomInputs(30, 1, 16, 16, "fresh")
	rate := e.FlipRate(inputs, Options{OU: ou.Size{R: 8, C: 8}, SimTime: 0})
	if rate > 0.2 {
		t.Fatalf("fresh-device flip rate %v too high", rate)
	}
}

func TestFlipRateGrowsWithAge(t *testing.T) {
	t.Parallel()
	e := testEngine(t)
	inputs := RandomInputs(40, 1, 16, 16, "age")
	opts := func(tt float64) Options {
		return Options{OU: ou.Size{R: 16, C: 16}, SimTime: tt}
	}
	fresh := e.FlipRate(inputs, opts(0))
	aged := e.FlipRate(inputs, opts(1e6))
	ancient := e.FlipRate(inputs, opts(1e10))
	if !(fresh <= aged && aged <= ancient) {
		t.Fatalf("flip rate not monotone in age: %v, %v, %v", fresh, aged, ancient)
	}
	if ancient == 0 {
		t.Fatal("extreme drift should flip some classifications")
	}
}

func TestReprogramRestoresBehaviour(t *testing.T) {
	t.Parallel()
	e := testEngine(t)
	inputs := RandomInputs(30, 1, 16, 16, "reprog")
	const tt = 1e8
	opts := Options{OU: ou.Size{R: 16, C: 16}, SimTime: tt}
	agedRate := e.FlipRate(inputs, opts)
	if energy := e.Reprogram(tt); energy <= 0 {
		t.Fatal("reprogram energy missing")
	}
	freshRate := e.FlipRate(inputs, opts)
	if freshRate > agedRate {
		t.Fatalf("reprogramming made things worse: %v -> %v", agedRate, freshRate)
	}
	if agedRate > 0 && freshRate >= agedRate {
		t.Fatalf("reprogramming did not help: %v -> %v", agedRate, freshRate)
	}
}

func TestFlipRateEmptyInputs(t *testing.T) {
	t.Parallel()
	e := testEngine(t)
	if e.FlipRate(nil, Options{}) != 0 {
		t.Fatal("empty input set should have zero flip rate")
	}
}

func TestTensorAccessors(t *testing.T) {
	t.Parallel()
	tt := NewTensor(2, 3, 4)
	tt.Set(1, 2, 3, 7)
	if tt.At(1, 2, 3) != 7 {
		t.Fatal("tensor accessor wrong")
	}
	if len(tt.Data) != 24 {
		t.Fatalf("tensor storage = %d, want 24", len(tt.Data))
	}
}

func TestMaxPool(t *testing.T) {
	t.Parallel()
	in := NewTensor(1, 4, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			in.Set(0, y, x, float64(y*4+x))
		}
	}
	out := maxPool2(in)
	if out.H != 2 || out.W != 2 {
		t.Fatalf("pool output %dx%d", out.H, out.W)
	}
	// Each 2×2 window's max is its bottom-right element.
	want := [][]float64{{5, 7}, {13, 15}}
	for y := 0; y < 2; y++ {
		for x := 0; x < 2; x++ {
			if out.At(0, y, x) != want[y][x] {
				t.Fatalf("pool(0,%d,%d) = %v, want %v", y, x, out.At(0, y, x), want[y][x])
			}
		}
	}
}

func TestRandomInputsDeterministic(t *testing.T) {
	t.Parallel()
	a := RandomInputs(2, 1, 4, 4, "s")
	b := RandomInputs(2, 1, 4, 4, "s")
	for i := range a {
		for k := range a[i].Data {
			if a[i].Data[k] != b[i].Data[k] {
				t.Fatal("inputs not deterministic")
			}
		}
	}
}

func TestRandomNetLayerWiring(t *testing.T) {
	t.Parallel()
	net := RandomNet(3, 16, 16, 10, "wiring")
	// conv(3,3→4), relu, pool, conv(3,4→8), pool, fc.
	if len(net.Ops) != 6 {
		t.Fatalf("ops = %d, want 6", len(net.Ops))
	}
	fc := net.Ops[5]
	// 16→14→7→5→2 spatial; 8 channels → 32 flat inputs.
	if fc.Kind != OpFC || fc.InDim != 8*2*2 || fc.OutDim != 10 {
		t.Fatalf("fc wiring wrong: %+v", fc)
	}
	if fc.W.Rows != fc.InDim || fc.W.Cols != fc.OutDim {
		t.Fatalf("fc weights %dx%d", fc.W.Rows, fc.W.Cols)
	}
}
