// Package infer executes small convolutional networks directly on
// programmed ReRAM crossbar models (internal/reram) — convolution via
// im2col, each weight matrix tiled across crossbars, every MVM computed
// through the non-ideal read path (conductance quantisation, drift,
// IR-drop, optional read noise).
//
// It is the repository's empirical counterpart to the analytic accuracy
// surrogate (internal/accuracy): where the surrogate maps OU size and
// device age to an accuracy-loss estimate, this engine actually runs
// inputs through drifted crossbars and measures how often the predicted
// class flips relative to the ideal execution. The `empirical` experiment
// uses it to validate the surrogate's monotone structure at device level.
package infer

import (
	"fmt"
	"math"
	"sort"

	"odin/internal/mat"
	"odin/internal/ou"
	"odin/internal/reram"
	"odin/internal/rng"
)

// OpKind enumerates the network operations the engine executes.
type OpKind int

const (
	// OpConv is a 2-D convolution (stride 1, "same" semantics are not
	// provided — valid padding keeps the arithmetic explicit).
	OpConv OpKind = iota
	// OpReLU applies max(0, x) element-wise.
	OpReLU
	// OpMaxPool2 is a 2×2, stride-2 max pool.
	OpMaxPool2
	// OpFC is a fully connected layer over the flattened tensor.
	OpFC
)

// Op is one network operation. Conv and FC ops carry weights.
type Op struct {
	Kind OpKind

	// Conv parameters.
	Kernel      int
	InChannels  int
	OutChannels int

	// FC parameters.
	InDim, OutDim int

	// W holds the weight matrix: conv as (k²·in)×out, FC as in×out.
	W *mat.Dense
}

// Tensor is a dense CHW activation tensor.
type Tensor struct {
	C, H, W int
	Data    []float64
}

// NewTensor allocates a zero tensor.
func NewTensor(c, h, w int) *Tensor {
	return &Tensor{C: c, H: h, W: w, Data: make([]float64, c*h*w)}
}

// At returns the element at (channel, y, x).
func (t *Tensor) At(c, y, x int) float64 { return t.Data[(c*t.H+y)*t.W+x] }

// Set assigns the element at (channel, y, x).
func (t *Tensor) Set(c, y, x int, v float64) { t.Data[(c*t.H+y)*t.W+x] = v }

// Net is a small CNN: ordered ops ending in an FC classifier.
type Net struct {
	InC, InH, InW int
	Ops           []Op
}

// RandomNet builds a deterministic random-weight CNN:
// conv(k)→ReLU→pool→conv(k)→pool→FC(classes). Random weights suffice for
// flip-rate studies — the question is output *stability* under
// non-idealities, not task accuracy. The classifier sees zero-mean
// features (no ReLU after the second conv); rectified features share a
// common activation-energy mode that makes one class win every input,
// which would blind the study.
func RandomNet(inC, inH, inW, classes int, seed string) *Net {
	src := rng.NewFromString(seed)
	n := &Net{InC: inC, InH: inH, InW: inW}
	const (
		k  = 3
		c1 = 4
		c2 = 8
	)
	randMat := func(rows, cols int) *mat.Dense {
		w := mat.NewDense(rows, cols)
		scale := math.Sqrt(2.0 / float64(rows))
		for i := range w.Data {
			w.Data[i] = src.NormFloat64() * scale
		}
		return w
	}
	h, w := inH, inW
	n.Ops = append(n.Ops,
		Op{Kind: OpConv, Kernel: k, InChannels: inC, OutChannels: c1, W: randMat(k*k*inC, c1)},
		Op{Kind: OpReLU},
		Op{Kind: OpMaxPool2},
	)
	h, w = (h-k+1)/2, (w-k+1)/2
	n.Ops = append(n.Ops,
		Op{Kind: OpConv, Kernel: k, InChannels: c1, OutChannels: c2, W: randMat(k*k*c1, c2)},
		Op{Kind: OpMaxPool2},
	)
	h, w = (h-k+1)/2, (w-k+1)/2
	flat := c2 * h * w
	n.Ops = append(n.Ops, Op{Kind: OpFC, InDim: flat, OutDim: classes, W: randMat(flat, classes)})
	return n
}

// Engine holds the crossbar-programmed network.
type Engine struct {
	net    *Net
	device reram.DeviceParams
	size   int // crossbar dimension

	// banks[i] is the crossbar tiling of op i's weight matrix (nil for
	// weight-less ops).
	banks []*bank
}

// bank tiles one weight matrix over crossbars.
type bank struct {
	rows, cols int
	rowTiles   int
	colTiles   int
	xbars      [][]*reram.Crossbar // [rowTile][colTile]
}

// NewEngine programs the network's weights into crossbars of the given
// dimension at simulation time 0.
func NewEngine(net *Net, device reram.DeviceParams, crossbarSize int) (*Engine, error) {
	if crossbarSize < 4 {
		return nil, fmt.Errorf("infer: crossbar size %d too small", crossbarSize)
	}
	e := &Engine{net: net, device: device, size: crossbarSize}
	for i, op := range net.Ops {
		if op.W == nil {
			e.banks = append(e.banks, nil)
			continue
		}
		b, err := e.program(i, op.W)
		if err != nil {
			return nil, err
		}
		e.banks = append(e.banks, b)
	}
	return e, nil
}

func (e *Engine) program(opIdx int, w *mat.Dense) (*bank, error) {
	b := &bank{
		rows:     w.Rows,
		cols:     w.Cols,
		rowTiles: (w.Rows + e.size - 1) / e.size,
		colTiles: (w.Cols + e.size - 1) / e.size,
	}
	for rt := 0; rt < b.rowTiles; rt++ {
		var row []*reram.Crossbar
		for ct := 0; ct < b.colTiles; ct++ {
			r0, c0 := rt*e.size, ct*e.size
			rN, cN := min(e.size, w.Rows-r0), min(e.size, w.Cols-c0)
			block := mat.NewDense(rN, cN)
			for i := 0; i < rN; i++ {
				for j := 0; j < cN; j++ {
					block.Set(i, j, w.At(r0+i, c0+j))
				}
			}
			x := reram.NewCrossbar(e.size, e.device)
			// Distinct labels decorrelate each array's device variation.
			x.SeedLabel = fmt.Sprintf("op%d/r%d/c%d", opIdx, rt, ct)
			x.Program(block, 0)
			row = append(row, x)
		}
		b.xbars = append(b.xbars, row)
	}
	return b, nil
}

// Options control one inference.
type Options struct {
	OU      ou.Size // active OU (degrades reads); zero value = full array
	SimTime float64 // device age driving drift
	Ideal   bool    // bypass all non-idealities (reference execution)

	NoiseSigma float64 // relative read-noise σ (0 = none)
	Noise      *rng.Source
}

// mvm computes xᵀ·W through the bank (summing row-tile partials).
func (e *Engine) mvm(b *bank, x []float64, opts Options) []float64 {
	if len(x) != b.rows {
		panic(fmt.Sprintf("infer: input length %d, want %d", len(x), b.rows))
	}
	out := make([]float64, b.cols)
	buf := make([]float64, e.size)
	for rt := 0; rt < b.rowTiles; rt++ {
		r0 := rt * e.size
		rN := min(e.size, b.rows-r0)
		for i := range buf {
			buf[i] = 0
		}
		copy(buf[:rN], x[r0:r0+rN])
		for ct := 0; ct < b.colTiles; ct++ {
			xbar := b.xbars[rt][ct]
			var partial []float64
			if opts.Ideal {
				partial = xbar.IdealMVM(buf)
			} else {
				partial = xbar.MVM(buf, reram.MVMOptions{
					OURows: opts.OU.R, OUCols: opts.OU.C,
					SimTime:    opts.SimTime,
					NoiseSigma: opts.NoiseSigma,
					Noise:      opts.Noise,
				})
			}
			c0 := ct * e.size
			cN := min(e.size, b.cols-c0)
			for j := 0; j < cN; j++ {
				out[c0+j] += partial[j]
			}
		}
	}
	return out
}

// Infer runs one input through the network and returns the logits.
func (e *Engine) Infer(input *Tensor, opts Options) []float64 {
	if input.C != e.net.InC || input.H != e.net.InH || input.W != e.net.InW {
		panic(fmt.Sprintf("infer: input %dx%dx%d, want %dx%dx%d",
			input.C, input.H, input.W, e.net.InC, e.net.InH, e.net.InW))
	}
	cur := input
	for i, op := range e.net.Ops {
		switch op.Kind {
		case OpConv:
			cur = e.conv(op, e.banks[i], cur, opts)
		case OpReLU:
			next := NewTensor(cur.C, cur.H, cur.W)
			for k, v := range cur.Data {
				if v > 0 {
					next.Data[k] = v
				}
			}
			cur = next
		case OpMaxPool2:
			cur = maxPool2(cur)
		case OpFC:
			flat := cur.Data
			out := e.mvm(e.banks[i], flat, opts)
			cur = &Tensor{C: len(out), H: 1, W: 1, Data: out}
		default:
			panic(fmt.Sprintf("infer: unknown op kind %d", op.Kind))
		}
	}
	return cur.Data
}

// conv executes a valid-padding stride-1 convolution via im2col MVMs.
func (e *Engine) conv(op Op, b *bank, in *Tensor, opts Options) *Tensor {
	outH := in.H - op.Kernel + 1
	outW := in.W - op.Kernel + 1
	out := NewTensor(op.OutChannels, outH, outW)
	patch := make([]float64, op.Kernel*op.Kernel*op.InChannels)
	for y := 0; y < outH; y++ {
		for x := 0; x < outW; x++ {
			idx := 0
			for c := 0; c < op.InChannels; c++ {
				for ky := 0; ky < op.Kernel; ky++ {
					for kx := 0; kx < op.Kernel; kx++ {
						patch[idx] = in.At(c, y+ky, x+kx)
						idx++
					}
				}
			}
			logits := e.mvm(b, patch, opts)
			for oc := 0; oc < op.OutChannels; oc++ {
				out.Set(oc, y, x, logits[oc])
			}
		}
	}
	return out
}

func maxPool2(in *Tensor) *Tensor {
	outH, outW := in.H/2, in.W/2
	out := NewTensor(in.C, outH, outW)
	for c := 0; c < in.C; c++ {
		for y := 0; y < outH; y++ {
			for x := 0; x < outW; x++ {
				m := in.At(c, 2*y, 2*x)
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						if v := in.At(c, 2*y+dy, 2*x+dx); v > m {
							m = v
						}
					}
				}
				out.Set(c, y, x, m)
			}
		}
	}
	return out
}

// Reprogram rewrites every crossbar at simTime, resetting drift, and
// returns the total write energy.
func (e *Engine) Reprogram(simTime float64) float64 {
	var energy float64
	for _, b := range e.banks {
		if b == nil {
			continue
		}
		for _, row := range b.xbars {
			for _, x := range row {
				eJ, _ := x.Reprogram(simTime)
				energy += eJ
			}
		}
	}
	return energy
}

// Classify returns the argmax class of the logits for the input.
func (e *Engine) Classify(input *Tensor, opts Options) int {
	return mat.ArgMax(e.Infer(input, opts))
}

// FlipRate runs every input through both the ideal and the non-ideal path
// and returns the fraction whose predicted class changed — the empirical
// accuracy-impact measure.
func (e *Engine) FlipRate(inputs []*Tensor, opts Options) float64 {
	if len(inputs) == 0 {
		return 0
	}
	flips := 0
	for _, in := range inputs {
		ideal := e.Classify(in, Options{Ideal: true})
		noisy := e.Classify(in, opts)
		if ideal != noisy {
			flips++
		}
	}
	return float64(flips) / float64(len(inputs))
}

// MeanLogitError returns the mean (over inputs) L2 deviation between the
// unit-normalised non-ideal and ideal logit vectors — a continuous
// accuracy-impact measure that resolves trends even when argmax flips are
// rare. Normalisation removes the uniform output shrink that drift causes
// (which any ADC-reference calibration absorbs and which cannot change the
// argmax); what remains is the *direction* distortion that flips classes.
func (e *Engine) MeanLogitError(inputs []*Tensor, opts Options) float64 {
	if len(inputs) == 0 {
		return 0
	}
	normalise := func(v []float64) []float64 {
		n := mat.Norm2(v)
		if n == 0 {
			return v
		}
		out := make([]float64, len(v))
		for i := range v {
			out[i] = v[i] / n
		}
		return out
	}
	var total float64
	for _, in := range inputs {
		ideal := normalise(e.Infer(in, Options{Ideal: true}))
		noisy := normalise(e.Infer(in, opts))
		var num float64
		for i := range ideal {
			d := noisy[i] - ideal[i]
			num += d * d
		}
		total += math.Sqrt(num)
	}
	return total / float64(len(inputs))
}

// Margin returns the ideal-execution decision margin of an input: the gap
// between the top two logits normalised by the logit magnitude. Small
// margins mark inputs near decision boundaries — the ones non-idealities
// flip first.
func (e *Engine) Margin(in *Tensor) float64 {
	logits := e.Infer(in, Options{Ideal: true})
	if len(logits) < 2 {
		return math.Inf(1)
	}
	best, second := math.Inf(-1), math.Inf(-1)
	for _, v := range logits {
		switch {
		case v > best:
			second, best = best, v
		case v > second:
			second = v
		}
	}
	n := mat.Norm2(logits)
	if n == 0 {
		return 0
	}
	return (best - second) / n
}

// HardestInputs returns the n inputs with the smallest ideal decision
// margins — a boundary-heavy evaluation set for flip-rate studies.
func (e *Engine) HardestInputs(candidates []*Tensor, n int) []*Tensor {
	type scored struct {
		t *Tensor
		m float64
	}
	all := make([]scored, len(candidates))
	for i, c := range candidates {
		all[i] = scored{c, e.Margin(c)}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].m < all[j].m })
	if n > len(all) {
		n = len(all)
	}
	out := make([]*Tensor, n)
	for i := range out {
		out[i] = all[i].t
	}
	return out
}

// RandomInputs generates deterministic random input tensors. Values are
// standard normal (zero-mean): all-positive inputs make every random
// network collapse onto one winning class, which would blind flip-rate
// studies.
func RandomInputs(n, c, h, w int, seed string) []*Tensor {
	src := rng.NewFromString(seed)
	out := make([]*Tensor, n)
	for i := range out {
		t := NewTensor(c, h, w)
		for k := range t.Data {
			t.Data[k] = src.NormFloat64()
		}
		out[i] = t
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
