package odin

import (
	"bytes"
	"math"
	"testing"
)

func TestNewSystemIsPaperPlatform(t *testing.T) {
	t.Parallel()
	sys := NewSystem()
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	if sys.Arch.PEs != 36 || sys.Arch.TilesPerPE != 4 ||
		sys.Arch.CrossbarsPerTile != 96 || sys.Arch.CrossbarSize != 128 {
		t.Fatalf("platform structure wrong: %+v", sys.Arch)
	}
	if sys.Device.GOn != 333e-6 || sys.Device.RWire != 1 || sys.Device.Nu != 0.2 {
		t.Fatalf("Table II parameters wrong: %+v", sys.Device)
	}
}

func TestModelsZoo(t *testing.T) {
	t.Parallel()
	models := Models()
	if len(models) != 9 {
		t.Fatalf("zoo has %d workloads, want 9", len(models))
	}
	m, err := ModelByName("GoogLeNet")
	if err != nil || m.Name != "GoogLeNet" {
		t.Fatalf("ModelByName failed: %v %v", m, err)
	}
	if MustModel("ViT").Name != "ViT" {
		t.Fatal("MustModel failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustModel on unknown name did not panic")
		}
	}()
	MustModel("AlexNet")
}

func TestLeaveOutFacade(t *testing.T) {
	t.Parallel()
	rest := LeaveOut(Models(), "ResNet")
	if len(rest) != 6 {
		t.Fatalf("LeaveOut kept %d, want 6", len(rest))
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	t.Parallel()
	// The quickstart flow, compressed: bootstrap → adapt → compare.
	sys := NewSystem()
	wl, err := sys.Prepare(MustModel("VGG11"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultBootstrapConfig()
	cfg.MaxExamples = 120 // keep the test quick
	pol, n, err := BootstrapPolicy(sys, LeaveOut(Models(), "VGG"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no bootstrap examples")
	}
	ctrl, err := NewController(sys, wl, pol, DefaultControllerOptions())
	if err != nil {
		t.Fatal(err)
	}
	horizon := HorizonConfig{End: 1e8, Epochs: 200}
	odinSum := SimulateHorizon(ctrl, horizon)

	blWl, err := sys.Prepare(MustModel("VGG11"))
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := NewBaseline(sys, blWl, Size{R: 16, C: 16})
	if err != nil {
		t.Fatal(err)
	}
	baseSum := SimulateHorizon(baseline, horizon)

	if odinSum.TotalEDP() >= baseSum.TotalEDP() {
		t.Fatalf("Odin EDP %v not below 16×16's %v", odinSum.TotalEDP(), baseSum.TotalEDP())
	}
	if odinSum.Reprograms >= baseSum.Reprograms {
		t.Fatalf("Odin reprogrammed %d times vs baseline %d", odinSum.Reprograms, baseSum.Reprograms)
	}
	if odinSum.MeanAccuracy < MustModel("VGG11").IdealAccuracy-0.01 {
		t.Fatalf("Odin sacrificed accuracy: %v", odinSum.MeanAccuracy)
	}
}

func TestBaselineSizesArePaperConfigs(t *testing.T) {
	t.Parallel()
	sizes := BaselineSizes()
	want := []Size{{R: 16, C: 16}, {R: 16, C: 4}, {R: 9, C: 8}, {R: 8, C: 4}}
	if len(sizes) != len(want) {
		t.Fatalf("got %d baseline sizes", len(sizes))
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("baseline %d = %v, want %v", i, sizes[i], want[i])
		}
	}
}

func TestCrossbarFacade(t *testing.T) {
	t.Parallel()
	xbar := NewCrossbar(64, DefaultDeviceParams())
	w := RandomWeights(64, 64, "facade-test")
	xbar.Program(w, 0)
	input := RandomWeights(1, 64, "facade-test-in").Row(0)
	fresh := xbar.RelativeMVMError(input, MVMOptions(Size{R: 16, C: 16}, 0))
	aged := xbar.RelativeMVMError(input, MVMOptions(Size{R: 16, C: 16}, 1e6))
	if !(fresh < aged) {
		t.Fatalf("drift did not increase MVM error: %v vs %v", fresh, aged)
	}
	if math.IsNaN(fresh) || math.IsNaN(aged) {
		t.Fatal("NaN errors")
	}
}

func TestRandomWeightsDeterministic(t *testing.T) {
	t.Parallel()
	a := RandomWeights(4, 4, "seed")
	b := RandomWeights(4, 4, "seed")
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("RandomWeights not deterministic")
		}
	}
	c := RandomWeights(4, 4, "other")
	if a.Data[0] == c.Data[0] {
		t.Fatal("different seeds should differ")
	}
}

func TestNewPolicyGridMatchesSystem(t *testing.T) {
	t.Parallel()
	sys := NewSystem().WithCrossbarSize(64)
	pol := NewPolicy(sys, 3)
	if pol.Grid() != sys.Grid() {
		t.Fatal("policy grid mismatch")
	}
}

func TestSaveLoadPolicy(t *testing.T) {
	t.Parallel()
	sys := NewSystem()
	pol := NewPolicy(sys, 5)
	var buf bytes.Buffer
	if err := SavePolicy(&buf, pol); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPolicy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	f := Features{LayerIndex: 3, LayerCount: 11, Sparsity: 0.5, KernelSize: 3, Time: 100}
	if back.Predict(f) != pol.Predict(f) {
		t.Fatal("loaded policy predicts differently")
	}
	if _, err := LoadPolicy(bytes.NewBufferString("junk")); err == nil {
		t.Fatal("junk accepted")
	}
}

func TestExtensionModelViaFacade(t *testing.T) {
	t.Parallel()
	m, err := ModelByName("MobileNetV2")
	if err != nil || m.Name != "MobileNetV2" {
		t.Fatalf("extension workload not resolvable: %v %v", m, err)
	}
	sys := NewSystem()
	wl, err := sys.Prepare(m)
	if err != nil {
		t.Fatal(err)
	}
	if wl.Layers() != 53 {
		t.Fatalf("MobileNetV2 prepared with %d layers, want 53", wl.Layers())
	}
}

func TestFacadeBaselineRoundTrip(t *testing.T) {
	t.Parallel()
	sys := NewSystem()
	wl, err := sys.Prepare(MustModel("ResNet18"))
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range BaselineSizes() {
		b, err := NewBaseline(sys, wl, size)
		if err != nil {
			t.Fatalf("%v: %v", size, err)
		}
		rep := b.RunInference(0)
		if rep.Energy <= 0 || rep.Latency <= 0 {
			t.Fatalf("%v: degenerate run %+v", size, rep)
		}
	}
}
