# Development and CI entry points. `make ci` is the full gate that
# .github/workflows/ci.yml runs; every target works offline with a bare
# Go >= 1.24 toolchain.

GO ?= go

.PHONY: all build fmt vet lint lintfix-audit test race bench benchsmoke check loadsmoke fleetsmoke parsmoke obssmoke optsmoke cachesmoke pulsesmoke ci

all: ci

build:
	$(GO) build ./...

# Fail (and list offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Project-specific static analysis: the five per-file rules (determinism,
# float-equality hygiene, unit-family safety, panic prefixes, dropped
# errors) plus the four interprocedural flow analyzers (detflow, clockonly,
# lockflow, leakcheck — internal/lint/flow, DESIGN.md §6 and §11), run
# module-wide so taint is chased across package boundaries.
# internal/clock/real.go is the single sanctioned wall-clock read (live
# serving injects it; results never depend on it), exempted by path.
lint:
	$(GO) run ./cmd/odinlint -exempt nondeterminism=internal/clock/real.go ./...

# Inventory of every inline //lint:allow directive in the tree, with file,
# line, and justification. Review this when auditing the determinism
# contract: each line is a deliberate, argued exception, and the list
# should only ever grow with a PR that argues the new entry.
# The doubled-comment filter drops documentation that merely shows the
# directive syntax (a `//lint:allow` inside a `//` doc line).
lintfix-audit:
	@grep -rn --include='*.go' -E '//lint:allow [a-z]' . \
		| grep -v '_test.go' | grep -vE '//.*//lint:allow' \
		|| echo "no allow directives"

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Compile-and-run smoke for every benchmark (one iteration each) so bench
# code cannot rot without CI noticing.
benchsmoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Perf trajectory: time `odinsim all` sequentially (workers=1) vs on the
# full GOMAXPROCS pool and record per-experiment ms + aggregate speedup in
# BENCH_odinsim.json. Artefact bytes are identical either way (asserted by
# the runner tests); only the wall clock moves.
bench:
	$(GO) run ./cmd/odinsim bench

# Parallel-engine gate: race-check the fan-out primitive and the engine's
# determinism/ordering tests, then run a multi-worker subset of real
# drivers under the race detector end to end.
parsmoke:
	$(GO) test -race ./internal/par/...
	$(GO) test -race -run 'TestRunAll|TestRunSelected' ./internal/experiments
	$(GO) run -race ./cmd/odinsim -workers 4 tab1 fig3 fig4 overhead > /dev/null

# Correctness harness (internal/check): first the deterministic
# property+golden suite at the fixed default seed — the replayable gate —
# then a randomized smoke at a fresh seed so CI keeps hunting new
# counterexamples. Any failure prints one ODINCHECK_SEED=... line that
# replays it exactly; see README "Correctness harness".
check:
	$(GO) test -run 'Prop|Golden' ./...
	ODINCHECK_SEED=$$(od -An -N8 -tu8 /dev/urandom | tr -d ' ') \
		ODINCHECK_TRIALS=25 $(GO) test -count=1 -run 'Prop' ./...

# Serving-layer gate: race-check internal/serve, then replay a deterministic
# load trace twice at nominal rate (30% of fleet capacity) and require zero
# sheds and byte-identical decision logs across the two replays.
loadsmoke:
	$(GO) test -race ./internal/serve/...
	$(GO) run ./cmd/odinserve replay -models VGG11,VGG11 -requests 200 -verify -max-shed 0

# Fleet-scale gate: race-check the fleet lifecycle/routing/tenant suites
# (hot add/remove determinism at fleet sizes up to 1024 across worker
# counts — TestPropFleetChurnDeterministic is the 1-vs-8-worker
# byte-identity property on a churned 1024-chip trace), then replay a
# 1024-chip trace from the CLI at 1 and 8 workers and require identical
# decision-log checksums.
fleetsmoke:
	$(GO) test -race -run 'TestPropFleet|TestPropExactRouter|TestRemoveChip|TestAddChip|TestLiveHotAdd|TestDriftRouter|TestTenant' ./internal/serve
	@tmp=$$(mktemp -d); \
	$(GO) run ./cmd/odinserve replay -models VGG11 -fleet 1024 -workers 1 -requests 2048 -router drift | grep '^checksum=' > $$tmp/w1.txt && \
	$(GO) run ./cmd/odinserve replay -models VGG11 -fleet 1024 -workers 8 -requests 2048 -router drift | grep '^checksum=' > $$tmp/w8.txt && \
	cmp $$tmp/w1.txt $$tmp/w8.txt && \
	rm -rf $$tmp

# Observability gate: race-check the span/audit/telemetry layers and their
# wiring (byte-identical replay traces), arm the disabled-overhead guard
# (see obs_guard_test.go; the nil fast path must stay a pointer test), and
# run one traced simulation end to end to keep `odinsim trace` honest.
obssmoke:
	$(GO) test -race ./internal/obs/... ./internal/telemetry/...
	$(GO) test -race -run 'TestReplayTraceByteIdentical|TestHandlerDebugEndpoints' ./internal/serve
	$(GO) test -race -run 'TestControllerAudit|TestControllerSpans' ./internal/core
	ODIN_OBS_GUARD=1 $(GO) test -count=1 -run TestDisabledObsOverheadGuard .
	@tmp=$$(mktemp -d); \
	$(GO) run ./cmd/odinsim trace -model resnet18 -runs 4 -out $$tmp/trace.json > /dev/null && \
	rm -rf $$tmp

# Optimizer-subsystem gate: race-check the registry and both new
# strategies (TPE sampler replay, Pareto front contract, controller
# attribution), pin the committed opt-compare table against its golden,
# and require the head-to-head bytes to be identical on a 1-worker and a
# 4-worker pool (the engine's determinism contract extended to the new
# experiment).
optsmoke:
	$(GO) test -race ./internal/opt/...
	$(GO) test -race -run 'TestControllerStrategy|TestExhaustiveFlag' ./internal/core
	$(GO) test -run 'TestGoldenArtifacts/opt-compare|TestOptCompareAcceptance' ./internal/experiments
# The runner's `<== ... done in Xs` footer carries wall-clock time, the
# one line that legitimately differs between runs; everything else must
# be byte-identical.
	@tmp=$$(mktemp -d); \
	$(GO) run ./cmd/odinsim -workers 1 opt-compare | grep -v '^<== ' > $$tmp/w1.txt && \
	$(GO) run ./cmd/odinsim -workers 4 opt-compare | grep -v '^<== ' > $$tmp/w4.txt && \
	cmp $$tmp/w1.txt $$tmp/w4.txt && \
	rm -rf $$tmp

# Decision-cache gate: race-check the cache package and every cached-path
# property (byte-identity, poisoned-entry invalidation, shared-fleet
# access), pin the allocation-free hot paths, then prove the headline
# contract from the command line: `odinsim all` renders byte-identical
# artefacts with the cache on (default) and off, at one worker and on a
# multi-worker pool. The runner's `<== ... done in Xs` footer carries
# wall-clock time, the one line that legitimately differs between runs.
cachesmoke:
	$(GO) test -race ./internal/decache/...
	$(GO) test -race -run 'TestPropCachedController|TestCachedReprogram|TestCacheShared|TestPolicyUpdateInvalidates|TestCachedDecision' ./internal/core
	$(GO) test -race -run 'TestReplayCachedByteIdentical|TestSharedCacheConcurrentChips' ./internal/serve
	$(GO) test -run 'TestSearchAllocFree' ./internal/search
	$(GO) test -run 'TestOptAllocFree|TestBOAllocBudget' ./internal/opt
	$(GO) test -run 'TestCacheFlagOutputIdentical' ./cmd/odinsim
	@tmp=$$(mktemp -d); \
	$(GO) run ./cmd/odinsim -cache on -workers 1 all | grep -v '^<== ' > $$tmp/on1.txt && \
	$(GO) run ./cmd/odinsim -cache off -workers 1 all | grep -v '^<== ' > $$tmp/off1.txt && \
	cmp $$tmp/on1.txt $$tmp/off1.txt && \
	$(GO) run ./cmd/odinsim -cache on -workers 4 all | grep -v '^<== ' > $$tmp/on4.txt && \
	cmp $$tmp/on1.txt $$tmp/on4.txt && \
	rm -rf $$tmp

# Streaming-telemetry gate: race-check the pulse bus/series package and its
# serve wiring (SSE surface, statusz, canonical-log worker invariance), run
# the `odinserve watch` dashboard end to end against a live HTTP server, arm
# the disabled-overhead guard (nil bus must stay one pointer test per
# publish site), then prove the headline contract from the CLI: the
# canonical pulse event log of a churn-free replay is byte-identical at 1
# and 8 workers.
pulsesmoke:
	$(GO) test -race ./internal/pulse/...
	$(GO) test -race -run 'TestPulse|TestPropPulse|TestHTTPEvents|TestHTTPStatusz|TestErrDraining|TestHTTPAdmin|TestHTTPHealthz' ./internal/serve
	$(GO) test -race -run 'TestWatch|TestReadSSE|TestInfFloat' ./cmd/odinserve
	ODIN_PULSE_GUARD=1 $(GO) test -count=1 -run TestDisabledPulseOverheadGuard .
	@tmp=$$(mktemp -d); \
	$(GO) run ./cmd/odinserve replay -models VGG11 -fleet 8 -workers 1 -requests 256 -router drift -pulse-log $$tmp/w1.log > /dev/null && \
	$(GO) run ./cmd/odinserve replay -models VGG11 -fleet 8 -workers 8 -requests 256 -router drift -pulse-log $$tmp/w8.log > /dev/null && \
	cmp $$tmp/w1.log $$tmp/w8.log && \
	rm -rf $$tmp

ci: build fmt vet lint test race benchsmoke check loadsmoke fleetsmoke parsmoke obssmoke optsmoke cachesmoke pulsesmoke
