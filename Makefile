# Development and CI entry points. `make ci` is the full gate that
# .github/workflows/ci.yml runs; every target works offline with a bare
# Go >= 1.24 toolchain.

GO ?= go

.PHONY: all build fmt vet lint test race bench check loadsmoke ci

all: ci

build:
	$(GO) build ./...

# Fail (and list offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Project-specific static analysis: determinism (internal/rng only),
# float-equality hygiene, unit-family safety, panic prefixes, dropped
# errors. See `go run ./cmd/odinlint -list` and DESIGN.md §6.
# internal/clock/real.go is the single sanctioned wall-clock read (live
# serving injects it; results never depend on it), exempted by path.
lint:
	$(GO) run ./cmd/odinlint -exempt nondeterminism=internal/clock/real.go ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Compile-and-run smoke for every benchmark (one iteration each) so bench
# code cannot rot without CI noticing.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Correctness harness (internal/check): first the deterministic
# property+golden suite at the fixed default seed — the replayable gate —
# then a randomized smoke at a fresh seed so CI keeps hunting new
# counterexamples. Any failure prints one ODINCHECK_SEED=... line that
# replays it exactly; see README "Correctness harness".
check:
	$(GO) test -run 'Prop|Golden' ./...
	ODINCHECK_SEED=$$(od -An -N8 -tu8 /dev/urandom | tr -d ' ') \
		ODINCHECK_TRIALS=25 $(GO) test -count=1 -run 'Prop' ./...

# Serving-layer gate: race-check internal/serve, then replay a deterministic
# load trace twice at nominal rate (30% of fleet capacity) and require zero
# sheds and byte-identical decision logs across the two replays.
loadsmoke:
	$(GO) test -race ./internal/serve/...
	$(GO) run ./cmd/odinserve replay -models VGG11,VGG11 -requests 200 -verify -max-shed 0

ci: build fmt vet lint test race bench check loadsmoke
