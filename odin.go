// Package odin is a from-scratch Go reproduction of "Odin: Learning to
// Optimize Operation Unit Configuration for Energy-efficient DNN
// Inferencing" (Narang, Doppa, Pande — DATE 2025).
//
// ReRAM crossbar accelerators compute DNN matrix-vector products by
// activating an R×C sub-array — an Operation Unit (OU) — per cycle. Large
// OUs are fast and energy-efficient but amplify IR-drop and conductance
// drift non-idealities; small OUs are accurate but slow. Odin learns, per
// neural layer and online, which OU size to use: a tiny two-headed MLP
// policy predicts (R, C) from layer features and elapsed time, a
// resource-bounded search over analytical energy/latency/non-ideality
// models refines the prediction, disagreements become training data, and
// the device is reprogrammed only when no OU size can meet the
// non-ideality threshold.
//
// The package is a facade over the full simulation stack in internal/:
// ReRAM device physics and crossbars (internal/reram), OU cost models
// (internal/ou), a layer-accurate DNN zoo (internal/dnn), crossbar-aware
// pruning (internal/sparsity), the PIM tile/PE architecture
// (internal/pim), a mesh NoC (internal/noc), the accuracy surrogate
// (internal/accuracy), the OU searches (internal/search), the MLP policy
// (internal/policy, internal/mlp), and the Odin controller with its
// baselines (internal/core). Every table and figure of the paper's
// evaluation regenerates through internal/experiments and the cmd/odinsim
// CLI.
//
// # Quick start
//
//	sys := odin.NewSystem()
//	model := odin.MustModel("VGG11")
//
//	// Offline: bootstrap the policy from every non-VGG workload.
//	known := odin.LeaveOut(odin.Models(), "VGG")
//	pol, _, err := odin.BootstrapPolicy(sys, known, odin.DefaultBootstrapConfig())
//	if err != nil { ... }
//
//	// Online: adapt to the unseen DNN over a 10⁸-second horizon.
//	wl, err := sys.Prepare(model)
//	ctrl, err := odin.NewController(sys, wl, pol, odin.DefaultControllerOptions())
//	summary := odin.SimulateHorizon(ctrl, odin.HorizonConfig{})
//	fmt.Println(summary)
//
// All simulation is deterministic: there is no wall-clock or global
// randomness anywhere in the stack.
package odin

import (
	"encoding/json"
	"fmt"
	"io"

	"odin/internal/accuracy"
	"odin/internal/core"
	"odin/internal/dnn"
	"odin/internal/mat"
	"odin/internal/mlp"
	"odin/internal/noc"
	"odin/internal/ou"
	"odin/internal/pim"
	"odin/internal/policy"
	"odin/internal/reram"
	"odin/internal/rng"
	"odin/internal/sparsity"
)

// Core platform and controller types.
type (
	// System bundles the simulated platform: PIM architecture (Table I),
	// ReRAM device (Table II), mesh NoC, pruning configuration, and the
	// accuracy surrogate.
	System = core.System
	// Workload is a DNN model prepared for simulation: pruned and mapped
	// onto the platform's crossbars.
	Workload = core.Workload
	// Controller is the Odin online-learning loop (paper Algorithm 1).
	Controller = core.Controller
	// ControllerOptions tunes the search budget, buffer size, and update
	// epochs of the online loop.
	ControllerOptions = core.ControllerOptions
	// Baseline runs a workload at a fixed, homogeneous OU size (the prior
	// art Odin is compared against).
	Baseline = core.Baseline
	// Runner is anything that can execute inference runs over simulated
	// time: a Controller or a Baseline.
	Runner = core.Runner
	// RunReport is the outcome of one inference run.
	RunReport = core.RunReport
	// HorizonConfig drives a long-term simulation (t₀ → 10⁸ s by default).
	HorizonConfig = core.HorizonConfig
	// HorizonSummary aggregates a horizon simulation: energy, latency,
	// EDP, reprogramming counts, and accuracy statistics.
	HorizonSummary = core.HorizonSummary
	// BootstrapConfig controls offline policy construction from known
	// DNNs (paper §V.A: up to 500 examples).
	BootstrapConfig = core.BootstrapConfig
)

// Decision-stack types.
type (
	// Size is an OU configuration: R activated rows × C activated columns.
	Size = ou.Size
	// Grid is the discrete OU search space (powers of two, 4..crossbar).
	Grid = ou.Grid
	// Policy is the trainable OU-configuration policy π(Φ, Θ).
	Policy = policy.Policy
	// PolicyConfig parameterises a fresh policy.
	PolicyConfig = policy.Config
	// Features is the policy input Φ: layer id, sparsity, kernel size,
	// elapsed inference time.
	Features = policy.Features
	// PolicyExample is one supervised training pair for the policy.
	PolicyExample = policy.Example
	// TrainOptions configures policy training (epochs, learning rate,
	// optimizer).
	TrainOptions = mlp.TrainOptions
	// Model is a DNN workload description (ordered weight layers bound to
	// a dataset).
	Model = dnn.Model
	// Layer is one weight layer of a DNN.
	Layer = dnn.Layer
	// Dataset describes an image-classification dataset.
	Dataset = dnn.Dataset
)

// Device and architecture types, exposed for custom platform studies.
type (
	// DeviceParams are the ReRAM cell/crossbar electrical parameters.
	DeviceParams = reram.DeviceParams
	// Crossbar is a programmable ReRAM array with a reference non-ideal
	// MVM (drift + IR-drop + optional read noise).
	Crossbar = reram.Crossbar
	// ArchConfig describes the PIM platform (PEs, tiles, crossbars, ADCs).
	ArchConfig = pim.ArchConfig
	// Mesh is the PE-interconnect NoC model.
	Mesh = noc.Mesh
	// AccuracyModel is the non-ideality → accuracy surrogate.
	AccuracyModel = accuracy.Model
	// SparsityConfig parameterises the crossbar-aware pruning simulator.
	SparsityConfig = sparsity.Config
)

// Device-study helpers.
type (
	// Matrix is a row-major dense matrix (weights for crossbar programming).
	Matrix = mat.Dense
	// CrossbarMVMOptions controls the reference non-ideal MVM.
	CrossbarMVMOptions = reram.MVMOptions
)

// MVMOptions builds reference-MVM options activating an R×C OU at the
// given simulation time.
func MVMOptions(s Size, simTime float64) CrossbarMVMOptions {
	return CrossbarMVMOptions{OURows: s.R, OUCols: s.C, SimTime: simTime}
}

// RandomWeights returns a rows×cols matrix of standard-normal weights drawn
// deterministically from the seed label.
func RandomWeights(rows, cols int, seed string) *Matrix {
	src := rng.NewFromString(seed)
	w := mat.NewDense(rows, cols)
	for i := range w.Data {
		w.Data[i] = src.NormFloat64()
	}
	return w
}

// NewSystem returns the paper's evaluation platform: 36 PEs on a 6×6 mesh,
// 4 tiles per PE, 96 crossbars of 128×128 ReRAM cells per tile (Tables I
// and II).
func NewSystem() System { return core.DefaultSystem() }

// NewCrossbar allocates a programmable ReRAM crossbar for direct device
// studies (see examples/crossbar_demo).
func NewCrossbar(size int, params DeviceParams) *Crossbar {
	return reram.NewCrossbar(size, params)
}

// DefaultDeviceParams returns the Table II ReRAM parameters.
func DefaultDeviceParams() DeviceParams { return reram.DefaultDeviceParams() }

// Models returns the nine workload/dataset pairs of the paper's evaluation:
// ResNet18/VGG11/GoogLeNet/DenseNet121/ViT on CIFAR-10, ResNet34/VGG16 on
// CIFAR-100, ResNet50/VGG19 on TinyImageNet.
func Models() []*Model { return dnn.AllWorkloads() }

// ModelByName returns a fresh instance of the named zoo model.
func ModelByName(name string) (*Model, error) { return dnn.ByName(name) }

// MustModel is ModelByName for known-good names; it panics on error.
func MustModel(name string) *Model {
	m, err := dnn.ByName(name)
	if err != nil {
		panic(fmt.Sprintf("odin: %v", err))
	}
	return m
}

// LeaveOut filters a model list down to everything outside the named
// family — the paper's unseen-DNN evaluation protocol.
func LeaveOut(models []*Model, family string) []*Model {
	return core.LeaveOut(models, family)
}

// NewPolicy creates an untrained OU-configuration policy for a system.
func NewPolicy(sys System, seed uint64) *Policy {
	return policy.New(policy.Config{Grid: sys.Grid(), Seed: seed})
}

// BootstrapPolicy builds and trains the offline OU policy from known DNNs.
// It returns the policy and the number of training examples used.
func BootstrapPolicy(sys System, known []*Model, cfg BootstrapConfig) (*Policy, int, error) {
	return core.BootstrapPolicy(sys, known, cfg)
}

// DefaultBootstrapConfig returns the paper's offline-training settings
// (≤ 500 examples across a drift-time sweep).
func DefaultBootstrapConfig() BootstrapConfig { return core.DefaultBootstrapConfig() }

// SavePolicy writes a policy (grid + trained parameters) as JSON — the
// deployment format for design-time-trained offline policies.
func SavePolicy(w io.Writer, pol *Policy) error {
	data, err := json.Marshal(pol)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// LoadPolicy reads a policy previously written by SavePolicy.
func LoadPolicy(r io.Reader) (*Policy, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	pol := new(Policy)
	if err := json.Unmarshal(data, pol); err != nil {
		return nil, err
	}
	return pol, nil
}

// NewController creates the Odin online-learning controller for a prepared
// workload. The policy is adapted in place.
func NewController(sys System, wl *Workload, pol *Policy, opts ControllerOptions) (*Controller, error) {
	return core.NewController(sys, wl, pol, opts)
}

// DefaultControllerOptions returns the paper's online-loop settings
// (RB search with K=3, 50-example buffer, 100-epoch updates).
func DefaultControllerOptions() ControllerOptions { return core.DefaultControllerOptions() }

// NewBaseline creates a fixed homogeneous-OU runner (e.g. the 16×16, 16×4,
// 9×8, and 8×4 configurations from prior work).
func NewBaseline(sys System, wl *Workload, size Size) (*Baseline, error) {
	return core.NewBaseline(sys, wl, size)
}

// BaselineSizes returns the four homogeneous configurations the paper
// compares against.
func BaselineSizes() []Size { return core.StandardBaselineSizes() }

// SimulateHorizon executes a long-term simulation of the runner and
// aggregates energy, latency, EDP, reprogramming, and accuracy statistics.
func SimulateHorizon(r Runner, cfg HorizonConfig) HorizonSummary {
	return core.SimulateHorizon(r, cfg)
}
