// Drift study: why the OU size must shrink over time and when to
// reprogram.
//
//	go run ./examples/drift_study
//
// The program first prints the raw device physics — drifted conductance
// (Eq. 3) and the OU non-ideality ΔG/G_ON (Eq. 4) across OU sizes and
// device ages — then contrasts three operating strategies on ResNet18:
// a coarse 16×16 OU (fast, reprograms constantly), a fine 8×4 OU (slow,
// rarely reprograms), and Odin (adapts the size, reprograms ~once).
package main

import (
	"fmt"
	"log"

	"odin"
)

func main() {
	device := odin.DefaultDeviceParams()

	fmt.Println("Conductance drift (Eq. 3): G_drift(t)/G_ON")
	ages := []float64{1, 1e2, 1e4, 1e6, 1e8}
	fmt.Printf("%12s", "t (s)")
	for _, t := range ages {
		fmt.Printf("%10.0e", t)
	}
	fmt.Printf("\n%12s", "G/G_ON")
	for _, t := range ages {
		fmt.Printf("%10.3f", device.GDrift(t)/device.GOn)
	}
	fmt.Println()

	fmt.Println("\nOU non-ideality ΔG/G_ON (Eq. 4) by OU size and age:")
	sizes := []odin.Size{{R: 4, C: 4}, {R: 8, C: 4}, {R: 16, C: 16}, {R: 64, C: 64}}
	fmt.Printf("%12s", "OU")
	for _, t := range ages {
		fmt.Printf("%10.0e", t)
	}
	fmt.Println()
	for _, s := range sizes {
		fmt.Printf("%12s", s.String())
		for _, t := range ages {
			fmt.Printf("%9.2f%%", device.NonIdealityFraction(s.R, s.C, t)*100)
		}
		fmt.Println()
	}

	// Strategy comparison on ResNet18.
	sys := odin.NewSystem()
	horizon := odin.HorizonConfig{End: 1e8, Epochs: 1000}

	fmt.Printf("\nResNet18 (CIFAR-10) over t0 → 1e8 s:\n")
	fmt.Printf("%-8s %12s %12s %12s %10s %10s\n",
		"strategy", "E/inf (J)", "L/inf (s)", "EDP", "reprogram", "min acc")

	runBaseline := func(name string, size odin.Size) {
		wl, err := sys.Prepare(odin.MustModel("ResNet18"))
		if err != nil {
			log.Fatal(err)
		}
		b, err := odin.NewBaseline(sys, wl, size)
		if err != nil {
			log.Fatal(err)
		}
		s := odin.SimulateHorizon(b, horizon)
		fmt.Printf("%-8s %12.3e %12.3e %12.3e %10d %9.1f%%\n",
			name, s.TotalEnergy(), s.TotalLatency(), s.TotalEDP(), s.Reprograms, s.MinAccuracy*100)
	}
	runBaseline("16×16", odin.Size{R: 16, C: 16})
	runBaseline("8×4", odin.Size{R: 8, C: 4})

	wl, err := sys.Prepare(odin.MustModel("ResNet18"))
	if err != nil {
		log.Fatal(err)
	}
	known := odin.LeaveOut(odin.Models(), "ResNet")
	pol, _, err := odin.BootstrapPolicy(sys, known, odin.DefaultBootstrapConfig())
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := odin.NewController(sys, wl, pol, odin.DefaultControllerOptions())
	if err != nil {
		log.Fatal(err)
	}
	s := odin.SimulateHorizon(ctrl, horizon)
	fmt.Printf("%-8s %12.3e %12.3e %12.3e %10d %9.1f%%\n",
		"Odin", s.TotalEnergy(), s.TotalLatency(), s.TotalEDP(), s.Reprograms, s.MinAccuracy*100)

	fmt.Println("\nCoarse OUs must reprogram constantly to hold accuracy; fine OUs pay")
	fmt.Println("per-cycle overheads forever. Odin rides the drift curve: large OUs while")
	fmt.Println("the device is fresh, smaller as it ages, reprogramming only when even")
	fmt.Println("the smallest OU violates the non-ideality threshold.")
}
