// CNN-on-crossbars: run an actual convolutional network on programmed
// ReRAM crossbar models and watch non-idealities corrupt it.
//
//	go run ./examples/cnn_on_crossbars
//
// A small CNN (conv→ReLU→pool→conv→pool→FC) is programmed into 64×64
// crossbars cell by cell. Every inference then flows through the
// non-ideal read path — conductance quantisation, per-cell drift
// variation, position-dependent IR-drop, optional read noise. The program
// reports how the class-flip rate and logit distortion evolve with device
// age, and how a reprogramming pass resets them — the device-level ground
// truth behind Odin's non-ideality threshold.
package main

import (
	"fmt"
	"log"

	"odin"
	"odin/internal/infer"
)

func main() {
	device := odin.DefaultDeviceParams()
	device.BitsPerCell = 6 // fine levels isolate drift/IR effects from quantisation

	net := infer.RandomNet(1, 16, 16, 4, "example-cnn")
	engine, err := infer.NewEngine(net, device, 64)
	if err != nil {
		log.Fatal(err)
	}

	// Boundary-heavy evaluation set: the inputs non-idealities flip first.
	candidates := infer.RandomInputs(200, 1, 16, 16, "example-cnn-inputs")
	inputs := engine.HardestInputs(candidates, 50)
	fmt.Printf("evaluating %d boundary inputs (hardest of %d random tensors)\n\n",
		len(inputs), len(candidates))

	ouSize := odin.Size{R: 16, C: 16}
	fmt.Printf("%-12s %14s %12s\n", "device age", "logit error", "flip rate")
	for _, age := range []float64{0, 1e2, 1e4, 1e6, 1e8} {
		opts := infer.Options{OU: ouSize, SimTime: age}
		fmt.Printf("%-12.0e %13.1f%% %11.1f%%\n",
			age, engine.MeanLogitError(inputs, opts)*100, engine.FlipRate(inputs, opts)*100)
	}

	// Reprogramming resets the drift clock (and resamples each cell's
	// drift coefficient — the filaments re-form).
	const late = 1e8
	before := engine.FlipRate(inputs, infer.Options{OU: ouSize, SimTime: late})
	energy := engine.Reprogram(late)
	after := engine.FlipRate(inputs, infer.Options{OU: ouSize, SimTime: late})
	fmt.Printf("\nreprogramming at t = %.0e s: flip rate %.1f%% -> %.1f%% (write energy %.2e J)\n",
		late, before*100, after*100, energy)
	fmt.Println("\nThis measured degradation-and-reset cycle is what Odin's η constraint")
	fmt.Println("manages analytically: shrink the OU while the device ages, rewrite only")
	fmt.Println("when even the smallest OU cannot hold the line.")
}
