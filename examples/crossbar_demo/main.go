// Crossbar demo: the device-level story behind the OU constraint.
//
//	go run ./examples/crossbar_demo
//
// A 128×128 ReRAM crossbar is programmed with a random weight block, then
// read back through the reference non-ideal MVM at different OU sizes and
// device ages. The relative MVM error shows both effects Odin trades off:
// bigger OUs amplify IR-drop immediately, and conductance drift amplifies
// everything over time — until a reprogramming pass resets the array.
package main

import (
	"fmt"

	"odin"
)

func main() {
	params := odin.DefaultDeviceParams()
	params.BitsPerCell = 4 // finer levels make the error trend easier to read
	xbar := odin.NewCrossbar(128, params)

	// Synthetic weight block and input activation vector.
	w := odin.RandomWeights(128, 128, "crossbar-demo-weights")
	inputs := odin.RandomWeights(1, 128, "crossbar-demo-inputs")
	input := inputs.Row(0)
	xbar.Program(w, 0)

	sizes := []odin.Size{{R: 4, C: 4}, {R: 16, C: 16}, {R: 64, C: 64}, {R: 128, C: 128}}
	ages := []float64{0, 1e2, 1e4, 1e6}

	fmt.Println("Relative MVM error ‖noisy − ideal‖/‖ideal‖ by OU size and device age:")
	fmt.Printf("%10s", "OU \\ t(s)")
	for _, t := range ages {
		fmt.Printf("%10.0e", t)
	}
	fmt.Println()
	for _, s := range sizes {
		fmt.Printf("%10s", s.String())
		for _, t := range ages {
			err := xbar.RelativeMVMError(input, odin.MVMOptions(s, t))
			fmt.Printf("%9.2f%%", err*100)
		}
		fmt.Println()
	}

	// Reprogram and show the reset.
	agedErr := xbar.RelativeMVMError(input, odin.MVMOptions(odin.Size{R: 16, C: 16}, 1e6))
	energy, latency := xbar.Reprogram(1e6)
	freshErr := xbar.RelativeMVMError(input, odin.MVMOptions(odin.Size{R: 16, C: 16}, 1e6))
	fmt.Printf("\nreprogramming at t = 1e6 s: error %.2f%% -> %.2f%% (cost: %.2e J, %.2e s)\n",
		agedErr*100, freshErr*100, energy, latency)
	fmt.Printf("array rewritten %d times in total\n", xbar.Writes())
}
