// Unseen-DNN adaptation study: watch the online policy converge.
//
//	go run ./examples/unseen_dnn
//
// The offline policy is trained on ResNets, DenseNet, GoogLeNet and ViT;
// VGG16 (CIFAR-100) arrives at runtime. The program runs Algorithm 1
// epoch by epoch and reports, per decision epoch, how often the policy's
// prediction already matches the searched optimum (its agreement), how
// many training examples accumulated, and when policy updates fire —
// the dynamics behind the paper's Fig. 5.
package main

import (
	"fmt"
	"log"

	"odin"
)

func main() {
	sys := odin.NewSystem()

	target := odin.MustModel("VGG16")
	wl, err := sys.Prepare(target)
	if err != nil {
		log.Fatal(err)
	}

	known := odin.LeaveOut(odin.Models(), "VGG")
	pol, n, err := odin.BootstrapPolicy(sys, known, odin.DefaultBootstrapConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline policy: %d examples from %d known models\n\n", n, len(known))

	opts := odin.DefaultControllerOptions()
	opts.BufferSize = 20 // smaller buffer → visible update cadence
	ctrl, err := odin.NewController(sys, wl, pol, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %-12s %-14s %-12s %-8s\n", "epoch", "time (s)", "disagreements", "agreement", "updates")
	layers := wl.Layers()
	totalUpdates := 0
	for epoch := 0; epoch < 40; epoch++ {
		t := float64(epoch) * 2.5e3 // sweep t0 → 1e5 s
		rep := ctrl.RunInference(t)
		if rep.PolicyUpdated {
			totalUpdates++
		}
		agreement := 1 - float64(rep.Disagreements)/float64(layers)
		if epoch%4 == 0 || rep.PolicyUpdated {
			marker := ""
			if rep.PolicyUpdated {
				marker = "  <- policy updated"
			}
			fmt.Printf("%-8d %-12.3g %-14d %-12s %-8d%s\n",
				epoch, t, rep.Disagreements,
				fmt.Sprintf("%.0f%%", agreement*100), ctrl.PolicyUpdates(), marker)
		}
	}

	fmt.Printf("\nfinal layer-wise OU configuration (t = 1e5 s):\n")
	for j, s := range ctrl.LastSizes() {
		l := wl.Model.Layers[j]
		fmt.Printf("  layer %2d %-12s %-6s (sparsity %4.1f%%)\n",
			j+1, l.Name, s.String(), l.WeightSparsity*100)
	}
	fmt.Printf("\npolicy updates fired: %d; reprograms: %d\n", ctrl.PolicyUpdates(), ctrl.Reprograms())
}
