// Quickstart: run Odin on an unseen DNN and compare it with the strongest
// homogeneous baseline.
//
//	go run ./examples/quickstart
//
// The program bootstraps the OU policy offline from every non-VGG workload
// (the paper's leave-one-out protocol), then lets Odin adapt to VGG11
// online over a 10⁸-second horizon, and prints energy / latency / EDP /
// reprogramming totals against the de-facto-standard 16×16 OU
// configuration.
package main

import (
	"fmt"
	"log"

	"odin"
)

func main() {
	sys := odin.NewSystem()

	// The DNN Odin has never seen.
	target := odin.MustModel("VGG11")
	wl, err := sys.Prepare(target)
	if err != nil {
		log.Fatal(err)
	}

	// Offline: train the policy on the other workload families.
	known := odin.LeaveOut(odin.Models(), "VGG")
	pol, examples, err := odin.BootstrapPolicy(sys, known, odin.DefaultBootstrapConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline policy bootstrapped from %d models (%d examples)\n", len(known), examples)

	// Online: Algorithm 1 over the drift horizon.
	ctrl, err := odin.NewController(sys, wl, pol, odin.DefaultControllerOptions())
	if err != nil {
		log.Fatal(err)
	}
	horizon := odin.HorizonConfig{} // defaults: t0 → 1e8 s
	odinSum := odin.SimulateHorizon(ctrl, horizon)

	// Baseline: the fixed 16×16 OU configuration from prior work.
	blWl, err := sys.Prepare(odin.MustModel("VGG11"))
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := odin.NewBaseline(sys, blWl, odin.Size{R: 16, C: 16})
	if err != nil {
		log.Fatal(err)
	}
	baseSum := odin.SimulateHorizon(baseline, horizon)

	fmt.Printf("\n%-8s %14s %14s %14s %12s %10s\n",
		"config", "energy/inf (J)", "latency/inf(s)", "EDP", "reprograms", "accuracy")
	row := func(name string, s odin.HorizonSummary) {
		fmt.Printf("%-8s %14.3e %14.3e %14.3e %12d %9.1f%%\n",
			name, s.TotalEnergy(), s.TotalLatency(), s.TotalEDP(), s.Reprograms, s.MeanAccuracy*100)
	}
	row("16×16", baseSum)
	row("Odin", odinSum)
	fmt.Printf("\nOdin reduces EDP by %.1f× without losing accuracy.\n",
		baseSum.TotalEDP()/odinSum.TotalEDP())
}
