// Crossbar sweep: does Odin's advantage survive smaller arrays?
//
//	go run ./examples/crossbar_sweep
//
// The paper's Fig. 9 sensitivity study re-runs the comparison on 128×128,
// 64×64 and 32×32 crossbars (ResNet34 / CIFAR-100). Smaller arrays suffer
// less IR-drop, so homogeneous OUs reprogram less — yet Odin keeps winning
// because its layer-wise sizing also cuts inference EDP.
package main

import (
	"fmt"
	"log"

	"odin"
)

func main() {
	horizon := odin.HorizonConfig{End: 1e8, Epochs: 800}

	fmt.Printf("%-10s %10s %10s %10s %10s %14s\n",
		"crossbar", "16×16", "16×4", "9×8", "8×4", "(EDP / Odin)")
	for _, xbarSize := range []int{128, 64, 32} {
		sys := odin.NewSystem().WithCrossbarSize(xbarSize)

		// Odin with the leave-one-out bootstrap.
		wl, err := sys.Prepare(odin.MustModel("ResNet34"))
		if err != nil {
			log.Fatal(err)
		}
		known := odin.LeaveOut(odin.Models(), "ResNet")
		pol, _, err := odin.BootstrapPolicy(sys, known, odin.DefaultBootstrapConfig())
		if err != nil {
			log.Fatal(err)
		}
		ctrl, err := odin.NewController(sys, wl, pol, odin.DefaultControllerOptions())
		if err != nil {
			log.Fatal(err)
		}
		odinSum := odin.SimulateHorizon(ctrl, horizon)

		fmt.Printf("%dx%-8d", xbarSize, xbarSize)
		for _, size := range odin.BaselineSizes() {
			if size.R > xbarSize || size.C > xbarSize {
				fmt.Printf("%10s", "-")
				continue
			}
			bwl, err := sys.Prepare(odin.MustModel("ResNet34"))
			if err != nil {
				log.Fatal(err)
			}
			b, err := odin.NewBaseline(sys, bwl, size)
			if err != nil {
				log.Fatal(err)
			}
			sum := odin.SimulateHorizon(b, horizon)
			fmt.Printf("%10.2f", sum.TotalEDP()/odinSum.TotalEDP())
		}
		fmt.Printf("   (odin: %d reprograms)\n", odinSum.Reprograms)
	}
	fmt.Println("\nValues > 1 mean the homogeneous configuration spends that many times")
	fmt.Println("more EDP than Odin on the same crossbar geometry.")
}
