package odin

import (
	"os"
	"testing"

	"odin/internal/clock"
	"odin/internal/core"
	"odin/internal/dnn"
	"odin/internal/pulse"
	"odin/internal/serve"
)

// pulseGuardSink defeats dead-code elimination in the gate benchmark.
var pulseGuardSink uint64

// pulseGuardBus is package-level so the gate benchmark measures a real
// load + nil test instead of a branch the compiler folds away on a
// provably-nil local.
var pulseGuardBus *pulse.Bus

// TestDisabledPulseOverheadGuard holds the streaming-telemetry layer to
// its budget when switched off. Two claims:
//
//  1. A nil *pulse.Bus is a true no-op: every method returns without
//     allocating — enforced unconditionally, since an allocation on the
//     disabled path is a logic bug, not timing noise.
//  2. The disabled cost per publish site is one pointer test: every site
//     in internal/serve gates event assembly on Enabled(), so a replay
//     with Config.Pulse nil pays sites × (nil test) per request. Armed
//     (ODIN_PULSE_GUARD=1, set by make pulsesmoke), the guard measures
//     that gate and requires the per-request total to stay under 2% of
//     the per-request dispatch cost — the same budget the obs guard
//     enforces for disabled tracing.
func TestDisabledPulseOverheadGuard(t *testing.T) {
	var bus *pulse.Bus
	if bus.Enabled() {
		t.Fatal("nil bus reports Enabled")
	}
	ev := pulse.Event{Kind: pulse.KindBatch, Chip: 0, Model: "VGG11",
		Batch: 1, Size: 4, Latency: 1e-3, Energy: 1e-6}
	allocs := testing.AllocsPerRun(200, func() {
		bus.Publish(ev)
		bus.Register(0, "VGG11")
		if bus.Since(0, pulse.AllKinds) != nil {
			t.Fatal("nil Since returned events")
		}
		pulseGuardSink += bus.LastSeq()
		st := bus.Snapshot()
		pulseGuardSink += uint64(len(st.Chips))
	})
	if allocs != 0 {
		t.Fatalf("nil bus allocates %.1f objects per publish round; disabled pulse must be allocation-free", allocs)
	}

	if os.Getenv("ODIN_PULSE_GUARD") != "1" {
		t.Skip("timing guard disarmed; set ODIN_PULSE_GUARD=1 (make pulsesmoke) to enforce")
	}

	// The disabled publish site: the Enabled() nil test, nothing else —
	// event assembly sits behind the gate at every site in internal/serve.
	gateRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if pulseGuardBus.Enabled() {
				pulseGuardSink++
			}
		}
	})
	// NsPerOp truncates to whole ns; the gate is sub-ns, so keep the float.
	gateNs := float64(gateRes.T.Nanoseconds()) / float64(gateRes.N)

	// Per-request dispatch cost on the same fleet shape the serve
	// benchmarks use: steady-state coalescing over two VGG11 chips.
	reqNs := float64(testing.Benchmark(func(b *testing.B) {
		clk := clock.NewVirtual(0)
		srv, err := serve.NewServer(serve.Config{
			Chips:      []serve.ChipConfig{{Model: "VGG11"}, {Model: "VGG11"}},
			QueueDepth: 64,
			MaxBatch:   8,
			Clock:      clk,
		})
		if err != nil {
			b.Fatal(err)
		}
		srv.Start()
		probe := core.DefaultSystem()
		wl, err := probe.Prepare(dnn.NewVGG11())
		if err != nil {
			b.Fatal(err)
		}
		ctrl, err := core.NewController(probe, wl, NewPolicy(probe, 99), core.ControllerOptions{})
		if err != nil {
			b.Fatal(err)
		}
		gap := ctrl.RunInference(0).Latency / 4
		b.ResetTimer()
		chans := make([]<-chan serve.Response, b.N)
		for i := 0; i < b.N; i++ {
			clk.Set(float64(i) * gap)
			chans[i] = srv.Submit("VGG11")
		}
		srv.Close()
		for _, ch := range chans {
			<-ch
		}
	}).NsPerOp())

	// Gates crossed per served request: admission shed check, start-batch
	// depth capture, batch retirement, forced-reprogram booking, decision
	// tap wiring check, maintenance pass — call it 8 to stay conservative.
	const sitesPerRequest = 8
	overhead := gateNs * sitesPerRequest / reqNs
	t.Logf("pulse gate %.2f ns, request dispatch %.0f ns, disabled overhead %.4f%% (%d sites)",
		gateNs, reqNs, overhead*100, sitesPerRequest)
	if overhead > 0.02 {
		t.Fatalf("disabled pulse costs %.2f%% of per-request dispatch (budget 2%%)", overhead*100)
	}
}
