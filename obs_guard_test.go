package odin

import (
	"math"
	"os"
	"testing"

	"odin/internal/core"
	"odin/internal/dnn"
	"odin/internal/ou"
	"odin/internal/search"
)

// referenceRB is a frozen copy of the pre-observability ResourceBounded
// inner loop: same moves, same records, no probe hook anywhere. It exists
// only as the baseline for TestDisabledObsOverheadGuard — if search.go's
// algorithm changes, update this copy alongside it.
func referenceRB(g ou.Grid, o search.Objective, start ou.Size, k int) search.Result {
	rIdx, cIdx, ok := g.IndexOf(start)
	if !ok {
		rIdx, cIdx = g.NearestIndex(start.R), g.NearestIndex(start.C)
	}
	res := search.Result{BestEDP: math.Inf(1)}
	evaluate := func(ri, ci int) (edp float64, feasible bool) {
		s := g.SizeAt(ri, ci)
		res.Evaluations++
		if !o.Feasible(s) {
			return math.Inf(1), false
		}
		return o.EDP(s), true
	}
	record := func(ri, ci int, edp float64) {
		if edp < res.BestEDP {
			res.Best, res.BestEDP, res.Found = g.SizeAt(ri, ci), edp, true
		}
	}
	curEDP, curFeasible := evaluate(rIdx, cIdx)
	if curFeasible {
		record(rIdx, cIdx, curEDP)
	}
	n := g.Levels()
	for step := 0; step < k; step++ {
		type move struct{ dr, dc int }
		bestMove := move{}
		bestEDP := math.Inf(1)
		bestNF := math.Inf(1)
		improved := false
		for _, mv := range []move{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
			ri, ci := rIdx+mv.dr, cIdx+mv.dc
			if ri < 0 || ri >= n || ci < 0 || ci >= n {
				continue
			}
			edp, feasible := evaluate(ri, ci)
			if feasible {
				record(ri, ci, edp)
				if edp < bestEDP {
					bestEDP, bestMove, improved = edp, mv, true
				}
			} else if !curFeasible && !improved {
				if nf := o.NF(g.SizeAt(ri, ci)); nf < bestNF {
					bestNF, bestMove = nf, mv
				}
			}
		}
		switch {
		case improved && (!curFeasible || bestEDP < curEDP):
			rIdx, cIdx = rIdx+bestMove.dr, cIdx+bestMove.dc
			curEDP, curFeasible = bestEDP, true
		case !curFeasible && !math.IsInf(bestNF, 1):
			rIdx, cIdx = rIdx+bestMove.dr, cIdx+bestMove.dc
			curEDP, curFeasible = math.Inf(1), false
		default:
			return res
		}
	}
	return res
}

// TestDisabledObsOverheadGuard holds the observability layer to its budget:
// with tracing and auditing disabled (nil Probe), the controller layer
// decision must cost within a few percent of the probe-free reference loop
// above. The ISSUE budget is <2%; the gate allows 35% headroom because
// wall-clock benchmarks on shared CI machines are noisy — a real regression
// (a probe call, an allocation, a missing nil fast path) shows up as 2×,
// not 1.1×.
//
// Timing assertions are inherently flaky under load, so the guard only arms
// when ODIN_OBS_GUARD=1 (make obssmoke sets it); otherwise it verifies the
// two loops still agree and skips the timing comparison.
func TestDisabledObsOverheadGuard(t *testing.T) {
	sys := core.DefaultSystem()
	wl, err := sys.Prepare(dnn.NewVGG11())
	if err != nil {
		t.Fatal(err)
	}
	pol := NewPolicy(sys, 1)
	grid := sys.Grid()
	feat := wl.FeaturesAt(4, 1e4)
	obj := core.LayerObjective(sys, wl, 4, 1e4)

	// The two loops must be the same algorithm before timing means anything.
	predicted := pol.Predict(feat)
	start := search.ClampFeasible(grid, obj, predicted)
	got := search.ResourceBounded(grid, obj, start, 3)
	want := referenceRB(grid, obj, start, 3)
	if got != want {
		t.Fatalf("instrumented search diverged from reference: %+v vs %+v", got, want)
	}

	if os.Getenv("ODIN_OBS_GUARD") != "1" {
		t.Skip("timing guard disarmed; set ODIN_OBS_GUARD=1 (make obssmoke) to enforce")
	}

	decision := func(rb func(ou.Grid, search.Objective, ou.Size, int) search.Result) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				predicted := pol.Predict(feat)
				start := search.ClampFeasible(grid, obj, predicted)
				_ = rb(grid, obj, start, 3)
			}
		}
	}
	// Interleave the pairs and keep the best (least-disturbed) run of each
	// side so a scheduler hiccup on one side cannot fake a regression.
	best := func(f func(*testing.B)) float64 {
		b := math.Inf(1)
		for i := 0; i < 3; i++ {
			if ns := float64(testing.Benchmark(f).NsPerOp()); ns < b {
				b = ns
			}
		}
		return b
	}
	ref := best(decision(referenceRB))
	instr := best(decision(search.ResourceBounded))
	ratio := instr / ref
	t.Logf("layer decision: reference %.0f ns/op, instrumented %.0f ns/op, ratio %.3f", ref, instr, ratio)
	if ratio > 1.35 {
		t.Fatalf("disabled observability costs %.1f%% over the probe-free reference (budget <2%%, gate 35%%)",
			(ratio-1)*100)
	}
}
